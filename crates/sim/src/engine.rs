//! The discrete-event engine.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use mp_cache::{Lookup, ResultCache};
use mp_dag::graph::TaskGraph;
use mp_dag::ids::{DataId, TaskId};
use mp_dag::task::Task;
use mp_perfmodel::{Estimator, PerfModel};
use mp_platform::types::{MemNodeId, Platform, WorkerId};
use mp_sched::api::{LoadInfo, PrefetchReq, SchedEvent, SchedView, Scheduler};
use mp_trace::{
    AuditRecord, Counter, ObsCell, RuntimeEvent, RuntimeEventKind, TaskSpan, Trace, TransferKind,
    TransferSpan,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::SimConfig;
use crate::data::DataStore;
use crate::error::SimError;
use crate::result::{SimResult, SimStats};

/// What an event means when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EvKind {
    /// Task `t` finishes executing on worker `w`.
    Finish,
    /// Task `t`'s retry backoff expires: hand it back to the scheduler.
    Retry,
}

/// Queue entry: task `t` / worker `w` at `time`.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    w: WorkerId,
    t: TaskId,
    kind: EvKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-event scratch buffers, reused across the whole run so the
/// steady-state event loop allocates nothing per event (DESIGN.md §6b).
#[derive(Default)]
struct Scratch {
    /// Folded access list of the task being staged (one entry per handle).
    folded: Vec<(DataId, bool, bool)>,
    /// Handles missing on the target node, with their read flag.
    missing: Vec<(DataId, bool)>,
    /// Completion-side dedup of unpinned handles.
    seen: Vec<DataId>,
    /// Completion-side dedup of committed writes.
    written: Vec<DataId>,
    /// Drained prefetch requests.
    prefetches: Vec<PrefetchReq>,
}

/// Engine-side per-worker load (busy-until estimates for the schedulers).
struct Loads(Vec<f64>);

impl LoadInfo for Loads {
    fn busy_until(&self, w: WorkerId) -> f64 {
        self.0[w.index()]
    }
}

// -------------------------------------------------------------------
// Staging helpers (module-level so the error paths are unit-testable).
// -------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn run_prefetches(
    scheduler: &mut dyn Scheduler,
    store: &mut DataStore,
    platform: &Platform,
    cfg: &SimConfig,
    now: f64,
    trace: &mut Trace,
    stats: &mut SimStats,
    drained: &mut Vec<PrefetchReq>,
    obs: &ObsCell,
) {
    drained.clear();
    scheduler.drain_prefetches_into(drained);
    for &req in drained.iter() {
        if !cfg.enable_prefetch {
            obs.bump(Counter::PrefetchesCancelled);
            continue;
        }
        if store.replica(req.data, req.node).is_some() {
            obs.bump(Counter::PrefetchesCancelled);
            continue;
        }
        let size = store.size(req.data);
        // Prefetches may evict clean LRU replicas but never force
        // write-backs; when that is not enough, skip the request.
        if !make_room_clean_only(store, req.node, size, platform, stats) {
            obs.bump(Counter::PrefetchesCancelled);
            continue;
        }
        let Some((src, start, end)) = pick_source(store, platform, req.data, req.node, now) else {
            obs.bump(Counter::PrefetchesCancelled);
            continue;
        };
        obs.bump(Counter::PrefetchesIssued);
        store.set_link_busy(src, req.node, end);
        store.allocate(req.data, req.node, end, false);
        stats.prefetch_bytes += size;
        if cfg.record_trace {
            trace.transfers.push(TransferSpan {
                data: req.data,
                from: src,
                to: req.node,
                bytes: size,
                start,
                end,
                kind: TransferKind::Prefetch,
            });
        }
    }
}

/// Clean-only eviction for prefetch: true when the space is available.
fn make_room_clean_only(
    store: &mut DataStore,
    node: MemNodeId,
    needed: u64,
    platform: &Platform,
    stats: &mut SimStats,
) -> bool {
    let cap = match platform.mem_node(node).capacity {
        None => return true,
        Some(c) => c,
    };
    if needed > cap {
        return false;
    }
    loop {
        if store.used(node) + needed <= cap {
            return true;
        }
        // LRU among clean, unpinned replicas.
        let victim = (0..store.handle_count())
            .filter_map(|i| {
                let d = DataId::from_index(i);
                store
                    .replica(d, node)
                    .and_then(|r| (r.pins == 0 && !r.dirty).then_some((d, r.last_use)))
            })
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        match victim {
            Some((d, _)) => {
                store.drop_replica(d, node);
                stats.capacity_evictions += 1;
            }
            None => return false,
        }
    }
}

/// A task may list the same handle several times (e.g. a symmetric
/// kernel reading a tile twice); fold to one entry per handle with
/// merged modes so pins/allocations stay balanced.
fn fold_accesses_into(task: &Task, out: &mut Vec<(DataId, bool, bool)>) {
    out.clear();
    for a in &task.accesses {
        match out.iter_mut().find(|(d, _, _)| *d == a.data) {
            Some((_, r, w)) => {
                *r |= a.mode.reads();
                *w |= a.mode.writes();
            }
            None => out.push((a.data, a.mode.reads(), a.mode.writes())),
        }
    }
}

/// Best source replica for fetching `d` to `to`: minimize completion.
fn pick_source(
    store: &DataStore,
    platform: &Platform,
    d: DataId,
    to: MemNodeId,
    now: f64,
) -> Option<(MemNodeId, f64, f64)> {
    let size = store.size(d);
    store
        .holders_full(d)
        .iter()
        .filter(|(n, _)| *n != to)
        .map(|&(src, rep)| {
            let start = store.link_start(src, to, now).max(rep.valid_at);
            let end = start + platform.transfer_time(size, src, to);
            (src, start, end)
        })
        .min_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)))
}

/// Release every pin [`prepare_task`] has taken so far: the present
/// folded replicas plus the first `fetched` missing entries (those are
/// pinned right after their allocation). Called on every rejection or
/// deferral exit so pin counts stay balanced — a task rejected between
/// pin and unpin must not leak pins.
fn rollback_pins(store: &mut DataStore, scratch: &Scratch, m: MemNodeId, fetched: usize) {
    for &(d, _, _) in &scratch.folded {
        if scratch.missing.iter().all(|&(md, _)| md != d) {
            store.unpin(d, m);
        }
    }
    for &(d, _) in &scratch.missing[..fetched] {
        store.unpin(d, m);
    }
}

/// Stage task `t` for worker `w` at time `now`: reserve memory, pin
/// replicas and launch the input transfers. Returns the time at which
/// every input is resident (the earliest possible execution start).
///
/// With `best_effort`, an allocation failure (device memory full of
/// pinned working sets) rolls back the pins and returns `Ok(None)` — the
/// caller defers preparation to execution time, when the pipeline's
/// earlier tasks have unpinned their data. Without it, the same failure
/// is [`SimError::OutOfMemory`]. An incapable worker or a handle with no
/// replica anywhere is a typed error either way, with every pin taken so
/// far rolled back.
#[allow(clippy::too_many_arguments)]
fn prepare_task(
    graph: &TaskGraph,
    platform: &Platform,
    model: &dyn PerfModel,
    store: &mut DataStore,
    cfg: &SimConfig,
    trace: &mut Trace,
    stats: &mut SimStats,
    scratch: &mut Scratch,
    w: WorkerId,
    t: TaskId,
    now: f64,
    best_effort: bool,
) -> Result<Option<f64>, SimError> {
    let worker = platform.worker(w);
    let m = worker.mem_node;
    let est = Estimator::new(graph, platform, model);
    if est.delta(t, worker.arch).is_none() {
        return Err(SimError::IncapableWorker { task: t, worker: w });
    }
    let task = graph.task(t);

    // Pin present replicas first so eviction cannot take them.
    fold_accesses_into(task, &mut scratch.folded);
    scratch.missing.clear();
    let mut needed_bytes = 0u64;
    let mut arrive = now;
    for &(d, reads, _) in &scratch.folded {
        match store.replica(d, m) {
            Some(rep) => {
                if reads {
                    arrive = arrive.max(rep.valid_at); // in-flight prefetch
                }
                store.pin(d, m);
                store.touch(d, m, now);
            }
            None => {
                needed_bytes += store.size(d);
                scratch.missing.push((d, reads));
            }
        }
    }

    // Reserve space (may trigger LRU eviction + dirty write-backs).
    let (space_ready, writebacks) = match store.try_make_room(m, needed_bytes, now, platform) {
        Ok(r) => r,
        Err((used, cap)) => {
            rollback_pins(store, scratch, m, 0);
            return if best_effort {
                Ok(None)
            } else {
                Err(SimError::OutOfMemory {
                    node: m,
                    used,
                    needed: needed_bytes,
                    capacity: cap,
                })
            };
        }
    };
    for (d, start, end) in writebacks {
        stats.writeback_bytes += store.size(d);
        stats.capacity_evictions += 1;
        if cfg.record_trace {
            trace.transfers.push(TransferSpan {
                data: d,
                from: m,
                to: platform.ram(),
                bytes: store.size(d),
                start,
                end,
                kind: TransferKind::WriteBack,
            });
        }
    }
    arrive = arrive.max(space_ready);

    // Fetch missing reads; allocate missing writes in place.
    for k in 0..scratch.missing.len() {
        let (d, is_read) = scratch.missing[k];
        if is_read {
            let Some((src, start, end)) = pick_source(store, platform, d, m, space_ready.max(now))
            else {
                rollback_pins(store, scratch, m, k);
                return Err(SimError::NoValidReplica {
                    data: d,
                    task: t,
                    node: m,
                });
            };
            store.set_link_busy(src, m, end);
            store.allocate(d, m, end, false);
            stats.demand_bytes += store.size(d);
            if cfg.record_trace {
                trace.transfers.push(TransferSpan {
                    data: d,
                    from: src,
                    to: m,
                    bytes: store.size(d),
                    start,
                    end,
                    kind: TransferKind::Demand,
                });
            }
            arrive = arrive.max(end);
        } else {
            // Write-only: contents materialize at task completion.
            store.allocate(d, m, f64::MAX, false);
        }
        store.pin(d, m);
    }

    Ok(Some(arrive))
}

/// Worker-failure recovery: the last worker of memory node `m` died, so
/// every replica it held is gone. Surviving copies elsewhere are
/// promoted to authoritative (the freshest one, re-marked dirty unless
/// it lives in RAM); a value whose *only* copy lived on `m` is
/// regenerated by re-executing its producing task chain, tracked through
/// `last_writer` and closed transitively over the producers' own lost
/// inputs. Returns the recompute seeds whose member-predecessors are all
/// intact — they go straight back to the scheduler; the rest are
/// released through `rindeg` as their producers recommit.
///
/// The node's workers all drained cleanly before dying, so nothing on
/// `m` is pinned when the replicas are dropped.
#[allow(clippy::too_many_arguments)]
fn recover_node(
    graph: &TaskGraph,
    store: &mut DataStore,
    m: MemNodeId,
    ram: MemNodeId,
    last_writer: &[Option<TaskId>],
    done: &mut [bool],
    popped: &mut [bool],
    recomputing: &mut [bool],
    rindeg: &mut [u32],
    completed: &mut usize,
    recompute_live: &mut usize,
    stats: &mut SimStats,
    obs: &ObsCell,
) -> Vec<TaskId> {
    let mut lost: Vec<DataId> = Vec::new();
    for i in 0..store.handle_count() {
        let d = DataId::from_index(i);
        let Some(rep) = store.replica(d, m) else {
            continue;
        };
        let (dirty, valid_at) = (rep.dirty, rep.valid_at);
        if valid_at == f64::MAX {
            // Write-only placeholder of a failed attempt: no value yet.
            store.drop_replica(d, m);
            continue;
        }
        let survivor = store
            .holders_full(d)
            .iter()
            .filter(|&&(n, r)| n != m && r.valid_at < f64::MAX)
            // A dirty victim is the authoritative value: only copies
            // fetched at/after it became valid carry that value.
            .filter(|&&(_, r)| !dirty || r.valid_at >= valid_at - 1e-9)
            .map(|&(n, r)| (n, r.valid_at))
            // Freshest copy; lowest node id breaks ties deterministically.
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)));
        store.drop_replica(d, m);
        match survivor {
            Some((n, _)) if dirty => {
                if n == ram {
                    store.mark_clean(d, n);
                } else {
                    store.mark_dirty(d, n);
                }
                stats.replicas_promoted += 1;
                obs.bump(Counter::ReplicasPromoted);
            }
            // A clean copy lost: the value survives elsewhere as-is.
            Some(_) => {}
            None => lost.push(d),
        }
    }

    // Walk back through the producers of every lost value. A producer
    // whose own input is also gone pulls *its* producer in, until the
    // closure is grounded on values that still exist somewhere (the RAM
    // copies of graph inputs survive by construction).
    let mut stack: Vec<TaskId> = Vec::new();
    for &d in &lost {
        if let Some(p) = last_writer[d.index()] {
            stack.push(p);
        }
    }
    let mut members: Vec<TaskId> = Vec::new();
    while let Some(q) = stack.pop() {
        let qi = q.index();
        // Still running, or already queued for recompute: it will
        // (re)commit its outputs on its own.
        if !done[qi] || recomputing[qi] {
            continue;
        }
        recomputing[qi] = true;
        done[qi] = false;
        popped[qi] = false;
        *completed -= 1;
        *recompute_live += 1;
        stats.tasks_recomputed += 1;
        obs.bump(Counter::TasksRecomputed);
        members.push(q);
        for d in graph.task(q).reads() {
            let present = store
                .holders_full(d)
                .iter()
                .any(|&(_, r)| r.valid_at < f64::MAX);
            if present {
                continue;
            }
            // The value `q` consumed came from its closest predecessor
            // writer — NOT `last_writer[d]`, which for an in-place
            // read-write update is `q` itself (a self-loop that would
            // leave the input unregenerated), and for a since-overwritten
            // handle is a successor whose value `q` never saw.
            let producer = graph
                .preds(q)
                .iter()
                .copied()
                .filter(|&p| graph.task(p).writes().any(|x| x == d))
                .max();
            match producer {
                Some(p) => stack.push(p),
                // No predecessor writes it: `q` consumed the graph-input
                // value. The pristine host copy of every graph input
                // survives device failure by construction (device commits
                // shadow it, they cannot destroy it), so re-materialize
                // it in RAM for the re-execution to read.
                None => {
                    if store.replica(d, ram).is_none() {
                        let at = store.now;
                        store.allocate(d, ram, at, false);
                    }
                }
            }
        }
    }

    // Order the recompute by the graph: a member waits (via `rindeg`)
    // for its member predecessors; zero-indegree members re-enter the
    // scheduler immediately.
    for &q in &members {
        rindeg[q.index()] = graph
            .preds(q)
            .iter()
            .filter(|p| recomputing[p.index()])
            .count() as u32;
    }
    members.sort_unstable();
    members.retain(|&q| rindeg[q.index()] == 0);
    members
}

/// Run `graph` on `platform` under `scheduler`, returning the makespan,
/// trace and statistics. Deterministic for a fixed config.
///
/// Never panics on scheduler misbehavior: a contract violation (pop to
/// an incapable worker, double pop, deadlock) or an unsatisfiable memory
/// state stops the run with a typed [`SimError`] in
/// [`SimResult::error`], preserving the trace and statistics up to the
/// failure for diagnosis.
pub fn simulate(
    graph: &TaskGraph,
    platform: &Platform,
    model: &dyn PerfModel,
    scheduler: &mut dyn Scheduler,
    cfg: SimConfig,
) -> SimResult {
    simulate_cached(graph, platform, model, scheduler, cfg, None)
}

/// [`simulate`] with an optional content-addressed result cache
/// (DESIGN.md §12). Tasks are probed when they become ready, *before*
/// entering the scheduler: a verified hit completes the task on the
/// spot in zero virtual time — its outputs are committed to host RAM
/// through the ordinary MSI machinery and its successors release (and
/// are probed) immediately — so hit tasks never touch the scheduler or
/// the performance model. A miss executes normally and populates the
/// cache at commit. With `cache == None` this is bit-identical to
/// [`simulate`] (enforced by the CI determinism gate).
pub fn simulate_cached(
    graph: &TaskGraph,
    platform: &Platform,
    model: &dyn PerfModel,
    scheduler: &mut dyn Scheduler,
    cfg: SimConfig,
    cache: Option<&ResultCache>,
) -> SimResult {
    let n = graph.task_count();
    let nw = platform.worker_count();
    let mut store = DataStore::new(graph, platform);
    let mut loads = Loads(vec![0.0; nw]);
    let mut events: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut indeg: Vec<usize> = (0..n)
        .map(|i| graph.preds(TaskId::from_index(i)).len())
        .collect();
    let mut pushed_at: Vec<f64> = vec![0.0; n];
    let mut done: Vec<bool> = vec![false; n];
    // Tasks handed out by the scheduler so far: a second pop of the same
    // task is rejected as a typed error before it can corrupt state.
    let mut popped: Vec<bool> = vec![false; n];
    let mut completed = 0usize;
    // --- Fault-injection state (all dormant without a fault plan) ---
    let kills_on = cfg.faults.kills_any();
    let transients_on = cfg.faults.transient_fail_prob > 0.0;
    let mut alive: Vec<bool> = vec![true; nw];
    let mut done_by: Vec<u32> = vec![0; nw]; // committed tasks per worker
    let mut attempts: Vec<u32> = vec![0; n]; // failed attempts per task
    let mut recomputing: Vec<bool> = vec![false; n];
    let mut rindeg: Vec<u32> = vec![0; n]; // recompute-order indegree
    let mut recompute_live = 0usize;
    // Tasks popped but blocked on an input a recompute chain is still
    // regenerating. Held outside the scheduler (so the chain's own tasks
    // win every pop) and re-pushed whenever a write commits.
    let mut parked: Vec<TaskId> = Vec::new();
    // Committed producer of each handle's current value, for the
    // lineage walk-back when a node dies with the only copy.
    let mut last_writer: Vec<Option<TaskId>> = vec![None; store.handle_count()];
    let mut trace = Trace::new(nw);
    let mut stats = SimStats::default();
    let cache_evictions_at_start = cache.map_or(0, |rc| rc.evictions());
    let cache_persist_at_start = cache.map_or_else(Default::default, |rc| rc.persist_stats());
    // Cache-hit / invalidation instants for the Chrome timeline, and the
    // worklist driving hit cascades (a hit releases successors that may
    // hit in turn — iterative, no recursion).
    let mut cache_events: Vec<RuntimeEvent> = Vec::new();
    let mut cache_worklist: Vec<(TaskId, Option<WorkerId>)> = Vec::new();
    // Guards the seed loop against re-releasing a task a hit cascade
    // already released (a source's hit can zero later sources' indeg
    // before the loop reaches them).
    let mut released: Vec<bool> = vec![false; n];
    // First typed failure; stops dispatching and surfaces in the result.
    let mut failure: Option<SimError> = None;
    // Engine-side observability cell (no-op unless `--features obs`).
    let obs = ObsCell::new();
    // Engine-side audit records (event-time monotonicity); only written
    // under `--features audit`.
    let mut engine_audit: Vec<AuditRecord> = Vec::new();
    #[cfg(feature = "audit")]
    let mut last_event_time = 0.0f64;

    // Log-normal noise factor with E[x] ≈ 1.
    let noise = |rng: &mut StdRng| -> f64 {
        if cfg.noise_cv == 0.0 {
            return 1.0;
        }
        let sigma = cfg.noise_cv;
        // Box-Muller.
        let (u1, u2): (f64, f64) = (rng.gen::<f64>().max(1e-12), rng.gen());
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (sigma * z - sigma * sigma / 2.0).exp()
    };

    // ---------------------------------------------------------------
    // Main loop.
    //
    // StarPU's accelerator workers run a depth-2 pipeline: while a task
    // executes, the worker already pops its *next* task and stages that
    // task's input transfers, overlapping PCIe traffic with computation
    // (STARPU_CUDA_PIPELINE). We reproduce that for GPU-class workers:
    // `next_slot[w]` holds the staged task; it begins executing the
    // moment the current one finishes (or when its transfers land,
    // whichever is later). CPU workers on the RAM node pop only when
    // idle, as in StarPU.
    // ---------------------------------------------------------------

    /// Pipeline depth of accelerator workers (StarPU's CUDA default).
    const GPU_LOOKAHEAD: usize = 2;

    let mut starts: Vec<f64> = vec![0.0; n]; // exec start per task
    let mut running: Vec<bool> = vec![false; nw];
    let mut exec_end: Vec<f64> = vec![0.0; nw];
    // Staged lookahead tasks per worker: (task, inputs-ready time if the
    // prepare succeeded — None defers it to execution time, noise).
    let mut next_slot: Vec<VecDeque<(TaskId, Option<f64>, f64)>> = vec![VecDeque::new(); nw];
    // Reused per-event scratch (no steady-state allocation).
    let mut scratch = Scratch::default();
    let emits_prefetches = scheduler.emits_prefetches();
    // Rotating dispatch offset: removes the systematic low-id-first bias
    // (concurrently polling workers have no global order in reality).
    let mut rotation = 0usize;
    let gpu_class: Vec<bool> = (0..nw)
        .map(|wi| {
            let w = platform.worker(WorkerId::from_index(wi));
            platform.arch(w.arch).class == mp_platform::types::ArchClass::Gpu
        })
        .collect();

    macro_rules! view {
        ($now:expr) => {
            SchedView {
                est: Estimator::new(graph, platform, model),
                loc: &store,
                load: &loads,
                now: $now,
            }
        };
    }

    // Kill worker `wi`: the fault plan's threshold was reached and the
    // worker is idle with nothing staged (clean drain — a worker never
    // dies holding pins, so replica cleanup needs no pin surgery).
    macro_rules! kill_worker {
        ($wi:expr, $now:expr) => {{
            let (wi, now): (usize, f64) = ($wi, $now);
            let w = WorkerId::from_index(wi);
            alive[wi] = false;
            stats.worker_failures += 1;
            obs.bump(Counter::WorkerFailures);
            {
                let view = view!(now);
                scheduler.worker_disabled(w, &view);
            }
            // Device memory dies with its last worker; host RAM outlives
            // the compute threads pinned to it.
            let m = platform.worker(w).mem_node;
            let node_lost = m != platform.ram()
                && platform
                    .workers_on_node(m)
                    .iter()
                    .all(|x| !alive[x.index()]);
            if node_lost {
                let seeds = recover_node(
                    graph,
                    &mut store,
                    m,
                    platform.ram(),
                    &last_writer,
                    &mut done,
                    &mut popped,
                    &mut recomputing,
                    &mut rindeg,
                    &mut completed,
                    &mut recompute_live,
                    &mut stats,
                    &obs,
                );
                for &s in &seeds {
                    pushed_at[s.index()] = now;
                    let view = view!(now);
                    scheduler.push_retry(s, attempts[s.index()], &view);
                    obs.bump(Counter::Pushes);
                }
            }
            // Every unfinished task must keep a capable survivor, or the
            // run can never complete — fail it now, with the culprit.
            let est = Estimator::new(graph, platform, model);
            for i in 0..n {
                if done[i] {
                    continue;
                }
                let t = TaskId::from_index(i);
                let capable = (0..nw).any(|xi| {
                    alive[xi]
                        && est
                            .delta(t, platform.worker(WorkerId::from_index(xi)).arch)
                            .is_some()
                });
                if !capable {
                    failure = Some(SimError::NoCapableWorker { task: t });
                    break;
                }
            }
        }};
    }

    // Begin executing a prepared task on an idle worker.
    macro_rules! begin_exec {
        ($wi:expr, $t:expr, $arrive:expr, $nf:expr, $now:expr) => {{
            let (wi, t, arrive, nf, now): (usize, TaskId, f64, f64, f64) =
                ($wi, $t, $arrive, $nf, $now);
            let w = WorkerId::from_index(wi);
            let delta = Estimator::new(graph, platform, model)
                .delta(t, platform.worker(w).arch)
                .expect("validated in prepare_task");
            let start = now.max(arrive);
            let end = start + delta * nf;
            starts[t.index()] = start;
            running[wi] = true;
            exec_end[wi] = end;
            // Load estimate published to the schedulers: *model-estimated*
            // end (start + δ), not the realized noisy end — no scheduler
            // can know mid-execution how long a task will really take
            // (StarPU's dm family plans with expected durations too).
            let staged: f64 = next_slot[wi]
                .iter()
                .map(|&(st, _, _)| {
                    Estimator::new(graph, platform, model)
                        .delta(st, platform.worker(w).arch)
                        .expect("staged task validated")
                })
                .sum();
            loads.0[wi] = start + delta + staged;
            seq += 1;
            events.push(Reverse(Event {
                time: end,
                seq,
                w,
                t,
                kind: EvKind::Finish,
            }));
            {
                let view = view!(now);
                scheduler.feedback(&SchedEvent::TaskStarted { t, w }, &view);
            }
        }};
    }

    // Vet a pop decision: typed rejection of contract violations (double
    // pop, incapable worker) instead of downstream panics. On success
    // the task is marked handed-out.
    macro_rules! vet_pop {
        ($t:expr, $w:expr, $now:expr) => {{
            let (t, w, now): (TaskId, WorkerId, f64) = ($t, $w, $now);
            if popped[t.index()] {
                Some(SimError::DoubleExecution { task: t })
            } else {
                let verdict = {
                    let view = view!(now);
                    view.validate_assignment(t, w)
                };
                match verdict {
                    Ok(()) => {
                        popped[t.index()] = true;
                        None
                    }
                    Err(e) => Some(SimError::IncapableWorker {
                        task: e.task,
                        worker: e.worker,
                    }),
                }
            }
        }};
    }

    macro_rules! dispatch {
        ($now:expr) => {{
            let now: f64 = $now;
            store.now = now;
            'dispatch: loop {
                let mut progress = false;
                rotation = (rotation + 1) % nw.max(1);
                // Pass 1: idle workers (they need work immediately).
                for k in 0..nw {
                    let wi = (k + rotation) % nw;
                    let w = WorkerId::from_index(wi);
                    if running[wi] {
                        continue;
                    }
                    if kills_on {
                        if !alive[wi] {
                            continue;
                        }
                        // Idle, nothing staged, threshold reached: die
                        // before popping any more work.
                        if next_slot[wi].is_empty()
                            && cfg.faults.kill_after(wi).is_some_and(|k| done_by[wi] >= k)
                        {
                            kill_worker!(wi, now);
                            if failure.is_some() {
                                break 'dispatch;
                            }
                            // The death re-bucketed the scheduler and may
                            // have re-pushed recompute seeds: workers
                            // already polled this round must poll again.
                            progress = true;
                            continue;
                        }
                    }
                    // Drain a staged task first, then pop fresh.
                    if let Some((t, arrive_opt, nf)) = next_slot[wi].pop_front() {
                        let arrive = match arrive_opt {
                            Some(a) => a,
                            // Deferred prepare: earlier pipeline tasks
                            // have unpinned their data by now.
                            None => match prepare_task(
                                graph,
                                platform,
                                model,
                                &mut store,
                                &cfg,
                                &mut trace,
                                &mut stats,
                                &mut scratch,
                                w,
                                t,
                                now,
                                false,
                            ) {
                                Ok(a) => a.expect("strict prepare never defers"),
                                Err(SimError::NoValidReplica { .. }) if recompute_live > 0 => {
                                    // A lost input is being regenerated:
                                    // park the task engine-side — NOT
                                    // back into the scheduler, which
                                    // could hand it straight back to
                                    // every idle worker and stall the
                                    // regenerating chain forever — and
                                    // release it at the next commit.
                                    popped[t.index()] = false;
                                    parked.push(t);
                                    continue;
                                }
                                Err(e) => {
                                    failure = Some(e);
                                    break 'dispatch;
                                }
                            },
                        };
                        begin_exec!(wi, t, arrive, nf, now);
                        progress = true;
                        continue;
                    }
                    let fresh = {
                        let view = view!(now);
                        scheduler.pop(w, &view)
                    };
                    match fresh {
                        Some(t) => {
                            if let Some(e) = vet_pop!(t, w, now) {
                                failure = Some(e);
                                break 'dispatch;
                            }
                            obs.bump(Counter::Pops);
                            let arrive = match prepare_task(
                                graph,
                                platform,
                                model,
                                &mut store,
                                &cfg,
                                &mut trace,
                                &mut stats,
                                &mut scratch,
                                w,
                                t,
                                now,
                                false,
                            ) {
                                Ok(a) => a.expect("strict prepare never defers"),
                                Err(SimError::NoValidReplica { .. }) if recompute_live > 0 => {
                                    popped[t.index()] = false;
                                    parked.push(t);
                                    continue;
                                }
                                Err(e) => {
                                    failure = Some(e);
                                    break 'dispatch;
                                }
                            };
                            let nf = noise(&mut rng);
                            begin_exec!(wi, t, arrive, nf, now);
                            progress = true;
                        }
                        None => stats.empty_pops += 1,
                    }
                }
                // Pass 2: busy GPU-class workers stage lookahead tasks so
                // the next input transfers overlap the current execution.
                for k in 0..nw {
                    let wi = (k + rotation) % nw;
                    let w = WorkerId::from_index(wi);
                    if !running[wi] || !gpu_class[wi] || next_slot[wi].len() >= GPU_LOOKAHEAD {
                        continue;
                    }
                    // Never stage more work onto a worker past its kill
                    // threshold: the pipeline would otherwise keep it
                    // perpetually busy and the kill would never fire.
                    if kills_on
                        && (!alive[wi]
                            || cfg.faults.kill_after(wi).is_some_and(|k| done_by[wi] >= k))
                    {
                        continue;
                    }
                    let fresh = {
                        let view = view!(now);
                        scheduler.pop(w, &view)
                    };
                    match fresh {
                        Some(t) => {
                            if let Some(e) = vet_pop!(t, w, now) {
                                failure = Some(e);
                                break 'dispatch;
                            }
                            obs.bump(Counter::Pops);
                            let arrive = match prepare_task(
                                graph,
                                platform,
                                model,
                                &mut store,
                                &cfg,
                                &mut trace,
                                &mut stats,
                                &mut scratch,
                                w,
                                t,
                                now,
                                true,
                            ) {
                                Ok(a) => a,
                                Err(SimError::NoValidReplica { .. }) if recompute_live > 0 => {
                                    popped[t.index()] = false;
                                    parked.push(t);
                                    continue;
                                }
                                Err(e) => {
                                    failure = Some(e);
                                    break 'dispatch;
                                }
                            };
                            let nf = noise(&mut rng);
                            next_slot[wi].push_back((t, arrive, nf));
                            // Publish queued work so push-time mappers see it.
                            let delta_est = Estimator::new(graph, platform, model)
                                .delta(t, platform.worker(w).arch)
                                .expect("validated in prepare_task");
                            loads.0[wi] += delta_est;
                            progress = true;
                        }
                        None => stats.empty_pops += 1,
                    }
                }
                if !progress {
                    break;
                }
            }
        }};
    }

    // Hand a newly-ready task to the scheduler — unless the result
    // cache already holds a verified entry for it, in which case the
    // task completes on the spot: outputs commit to host RAM at `now`
    // (zero virtual cost), successors release immediately and are
    // probed in turn via the worklist. Cache-off expands to exactly the
    // pre-cache push path (one worklist item, popped immediately), so
    // schedules are bit-identical.
    macro_rules! push_ready {
        ($t:expr, $from:expr, $now:expr) => {{
            let (t0, from0, now): (TaskId, Option<WorkerId>, f64) = ($t, $from, $now);
            cache_worklist.push((t0, from0));
            while let Some((t, from)) = cache_worklist.pop() {
                released[t.index()] = true;
                let mut hit = None;
                if let Some(rc) = cache {
                    match graph.cache_meta(t).map(|m| (m, rc.lookup(m, false))) {
                        Some((_, Lookup::Hit(e))) => hit = Some(e),
                        Some((_, Lookup::Invalidated)) => {
                            stats.cache_invalidations += 1;
                            stats.cache_misses += 1;
                            obs.bump(Counter::CacheInvalidations);
                            obs.bump(Counter::CacheMisses);
                            if cfg.record_trace {
                                cache_events.push(RuntimeEvent {
                                    worker: 0,
                                    at: now,
                                    kind: RuntimeEventKind::CacheInvalidated,
                                });
                            }
                        }
                        _ => {
                            // No entry — or no metadata at all (bare
                            // `add_task` graphs can never hit).
                            stats.cache_misses += 1;
                            obs.bump(Counter::CacheMisses);
                        }
                    }
                }
                match hit {
                    Some(_entry) => {
                        let task = graph.task(t);
                        let ram = platform.ram();
                        let mut bytes = 0u64;
                        scratch.written.clear();
                        for d in task.writes() {
                            if scratch.written.contains(&d) {
                                continue;
                            }
                            scratch.written.push(d);
                            // Materialize the output where it was born:
                            // the home RAM node (never evicted, survives
                            // device deaths). Same commit the executing
                            // path uses, so MSI invariants hold.
                            if store.replica(d, ram).is_none() {
                                store.allocate(d, ram, now, false);
                            }
                            store.commit_write(d, ram, now);
                            last_writer[d.index()] = Some(t);
                            bytes += store.size(d);
                        }
                        done[t.index()] = true;
                        completed += 1;
                        stats.cache_hits += 1;
                        stats.bytes_materialized += bytes;
                        obs.bump(Counter::CacheHits);
                        obs.add(Counter::BytesMaterialized, bytes);
                        if cfg.record_trace {
                            cache_events.push(RuntimeEvent {
                                worker: 0,
                                at: now,
                                kind: RuntimeEventKind::CacheHit,
                            });
                        }
                        for &s in graph.succs(t) {
                            indeg[s.index()] -= 1;
                            if indeg[s.index()] == 0 {
                                cache_worklist.push((s, None));
                            }
                        }
                    }
                    None => {
                        pushed_at[t.index()] = now;
                        let view = view!(now);
                        scheduler.push(t, from, &view);
                        obs.bump(Counter::Pushes);
                    }
                }
            }
        }};
    }

    // Initially-ready tasks, in submission order. A hit cascade can
    // zero the indegree of (and release) tasks the loop has not reached
    // yet — the `released` guard keeps each task released exactly once.
    {
        store.now = 0.0;
        for i in 0..n {
            if indeg[i] == 0 && !released[i] {
                let t = TaskId::from_index(i);
                push_ready!(t, None, 0.0);
            }
        }
        if emits_prefetches {
            run_prefetches(
                scheduler,
                &mut store,
                platform,
                &cfg,
                0.0,
                &mut trace,
                &mut stats,
                &mut scratch.prefetches,
                &obs,
            );
        }
    }
    dispatch!(0.0);

    while failure.is_none() {
        let Some(Reverse(ev)) = events.pop() else {
            break;
        };
        let now = ev.time;
        #[cfg(feature = "audit")]
        {
            use mp_trace::AuditKind;
            if now < last_event_time - 1e-9 {
                engine_audit.push(AuditRecord::new(
                    now,
                    AuditKind::EventTimeRegression,
                    format!("event at {now} after {last_event_time}"),
                ));
            }
            last_event_time = last_event_time.max(now);
        }
        store.now = now;
        let t = ev.t;
        let w = ev.w;
        if ev.kind == EvKind::Retry {
            // Backoff expired: the failed task re-enters the scheduler.
            pushed_at[t.index()] = now;
            {
                let view = view!(now);
                scheduler.push_retry(t, attempts[t.index()], &view);
            }
            obs.bump(Counter::Pushes);
            dispatch!(now);
            continue;
        }
        running[w.index()] = false;
        let worker = platform.worker(w);
        let m = worker.mem_node;
        let task = graph.task(t);

        // Transient-failure injection: the attempt produced nothing.
        // Release the input pins, commit no write, record no span; the
        // write-only placeholders stay allocated for the retry.
        if transients_on && cfg.faults.transient_fails(t.index(), attempts[t.index()]) {
            scratch.seen.clear();
            for a in &task.accesses {
                if scratch.seen.contains(&a.data) {
                    continue;
                }
                scratch.seen.push(a.data);
                store.unpin(a.data, m);
            }
            attempts[t.index()] += 1;
            if attempts[t.index()] >= cfg.retry.max_attempts {
                failure = Some(SimError::RetryExhausted {
                    task: t,
                    attempts: attempts[t.index()],
                });
                break;
            }
            stats.tasks_retried += 1;
            obs.bump(Counter::TasksRetried);
            popped[t.index()] = false;
            seq += 1;
            events.push(Reverse(Event {
                time: now + cfg.retry.backoff_for(attempts[t.index()]),
                seq,
                w,
                t,
                kind: EvKind::Retry,
            }));
            dispatch!(now);
            continue;
        }

        // Close out the execution (same folded view as start_task).
        {
            scratch.seen.clear();
            for a in &task.accesses {
                if scratch.seen.contains(&a.data) {
                    continue;
                }
                scratch.seen.push(a.data);
                store.unpin(a.data, m);
                store.touch(a.data, m, now);
            }
            scratch.written.clear();
            for d in task.writes() {
                if !scratch.written.contains(&d) {
                    scratch.written.push(d);
                    store.commit_write(d, m, now);
                    last_writer[d.index()] = Some(t);
                }
            }
        }
        // Populate the result cache (payload-less: virtual time has no
        // bytes — the threaded runtime stores real buffers).
        if let Some(rc) = cache {
            if let Some(meta) = graph.cache_meta(t) {
                let bytes = scratch.written.iter().map(|&d| store.size(d)).sum();
                rc.insert(meta, None, bytes);
            }
        }
        assert!(!done[t.index()], "task {t:?} finished twice");
        done[t.index()] = true;
        completed += 1;
        done_by[w.index()] += 1;
        if cfg.record_trace {
            trace.tasks.push(TaskSpan {
                task: t,
                ttype: task.ttype,
                worker: w,
                ready_at: pushed_at[t.index()],
                start: starts[t.index()],
                end: now,
            });
        }
        if cfg.feedback_to_model {
            let est = Estimator::new(graph, platform, model);
            est.record(t, worker.arch, now - starts[t.index()]);
        }
        {
            let view = view!(now);
            scheduler.feedback(
                &SchedEvent::TaskFinished {
                    t,
                    w,
                    elapsed_us: now - starts[t.index()],
                },
                &view,
            );
        }

        // Release successors: indegree decrements publish newly-ready
        // tasks straight into the scheduler — no intermediate collection,
        // no rescan of the frontier. A *recomputed* task instead releases
        // through the recompute indegree: the graph indegrees were
        // already consumed by the original execution, and decrementing
        // them again would underflow.
        if recomputing[t.index()] {
            recomputing[t.index()] = false;
            recompute_live -= 1;
            for &s in graph.succs(t) {
                if recomputing[s.index()] && rindeg[s.index()] > 0 {
                    rindeg[s.index()] -= 1;
                    if rindeg[s.index()] == 0 {
                        pushed_at[s.index()] = now;
                        let view = view!(now);
                        scheduler.push_retry(s, attempts[s.index()], &view);
                        obs.bump(Counter::Pushes);
                    }
                }
            }
        } else {
            for &s in graph.succs(t) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    push_ready!(s, Some(w), now);
                }
            }
        }
        // A write just committed: tasks parked on a lost input may now
        // find it (or discover the next missing one and re-park).
        if !parked.is_empty() {
            for &p in &parked {
                pushed_at[p.index()] = now;
                let view = view!(now);
                scheduler.push_retry(p, attempts[p.index()], &view);
                obs.bump(Counter::Pushes);
            }
            parked.clear();
        }
        if emits_prefetches {
            run_prefetches(
                scheduler,
                &mut store,
                platform,
                &cfg,
                now,
                &mut trace,
                &mut stats,
                &mut scratch.prefetches,
                &obs,
            );
        }

        dispatch!(now);
    }

    if failure.is_none() && completed != n {
        // Detail the first few stuck tasks with their unmet dependencies
        // so the report distinguishes "the graph never released it" from
        // "the scheduler is sitting on a ready task".
        let mut stuck: Vec<(TaskId, Vec<TaskId>)> = Vec::new();
        for i in 0..n {
            if done[i] {
                continue;
            }
            if stuck.len() >= SimError::DEADLOCK_DETAIL_CAP {
                break;
            }
            let t = TaskId::from_index(i);
            let unmet: Vec<TaskId> = graph
                .preds(t)
                .iter()
                .copied()
                .filter(|p| !done[p.index()])
                .take(SimError::DEADLOCK_DETAIL_CAP)
                .collect();
            stuck.push((t, unmet));
        }
        failure = Some(SimError::Deadlock {
            completed,
            total: n,
            pending: scheduler.pending(),
            stuck,
        });
    }
    stats.tasks = completed;

    let makespan = exec_end.iter().copied().fold(0.0f64, f64::max);
    if failure.is_none() {
        // Pin balance at quiesce: every pin taken while staging must have
        // been released by a completion or an error rollback.
        debug_assert!(
            store.leaked_pins().is_empty(),
            "pin leak at quiesce: {:?}",
            store.leaked_pins()
        );
        #[cfg(feature = "audit")]
        store.audit_quiesce();
        if cfg.validate && cfg.record_trace {
            trace.validate().expect("trace validation failed");
            // Precedence: every task starts at or after all predecessors end.
            for span in &trace.tasks {
                for &p in graph.preds(span.task) {
                    let Some(pspan) = trace.span_of(p) else {
                        // No span: the predecessor must have been served
                        // from the result cache (it completed, at or
                        // before the instant it released this task).
                        assert!(
                            cache.is_some() && done[p.index()],
                            "predecessor {p:?} executed without a span"
                        );
                        continue;
                    };
                    let pe = pspan.end;
                    assert!(
                        span.start >= pe - 1e-6,
                        "{:?} started at {} before predecessor {:?} ended at {}",
                        span.task,
                        span.start,
                        p,
                        pe
                    );
                }
            }
        }
    }

    let mut audit = store.take_audit();
    audit.append(&mut engine_audit);

    // Capacity evictions happen inside the shared cache (it can be
    // shared across runs), so this run's share is the delta over its
    // lifetime counter.
    if let Some(rc) = cache {
        stats.cache_evictions = rc.evictions() - cache_evictions_at_start;
    }

    // Quiesce-time counter aggregation: the engine-side cell (pops,
    // pushes, prefetch fates) merged with whatever the policy reports
    // (holds, evictions, arena hits, heap compactions, shard steals).
    let mut counters = scheduler.counters();
    obs.drain_into(&mut counters);
    counters.cache_evictions += stats.cache_evictions;
    if let Some(rc) = cache {
        let ps = rc.persist_stats();
        counters.cache_persist_writes += ps.writes - cache_persist_at_start.writes;
        counters.cache_loaded += ps.loaded - cache_persist_at_start.loaded;
        counters.cache_load_rejects += ps.load_rejects - cache_persist_at_start.load_rejects;
        counters.cache_compactions += ps.compactions - cache_persist_at_start.compactions;
    }

    SimResult {
        scheduler: scheduler.name().to_string(),
        makespan,
        trace,
        stats,
        error: failure,
        audit,
        counters,
        cache_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_dag::access::AccessMode;
    use mp_perfmodel::{TableModel, TimeFn};
    use mp_platform::presets::simple;
    use mp_platform::types::ArchClass;

    fn fixture() -> (TaskGraph, Platform, TableModel) {
        let mut g = TaskGraph::new();
        let k = g.register_type("K", true, true);
        let d = g.add_data(64, "d");
        g.add_task(k, vec![(d, AccessMode::Read)], 1.0, "t");
        let p = simple(1, 1);
        let m = TableModel::builder()
            .set("K", ArchClass::Cpu, TimeFn::Const(10.0))
            .set("K", ArchClass::Gpu, TimeFn::Const(5.0))
            .build();
        (g, p, m)
    }

    /// An orphaned handle (no replica anywhere) surfaces as a typed
    /// `NoValidReplica`, and the rejected staging attempt leaks no pins.
    #[test]
    fn stage_without_any_replica_is_typed_error() {
        let (g, p, m) = fixture();
        let d = DataId(0);
        let t = TaskId(0);
        let mut store = DataStore::new(&g, &p);
        store.drop_replica(d, p.ram());
        let mut scratch = Scratch::default();
        let mut trace = Trace::new(p.worker_count());
        let mut stats = SimStats::default();
        let cfg = SimConfig::default();
        // Worker 1 is the GPU in `simple(1, 1)`: the read must be
        // fetched, but no node holds the handle.
        let err = prepare_task(
            &g,
            &p,
            &m,
            &mut store,
            &cfg,
            &mut trace,
            &mut stats,
            &mut scratch,
            WorkerId(1),
            t,
            0.0,
            false,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SimError::NoValidReplica {
                data: d,
                task: t,
                node: MemNodeId(1),
            }
        );
        assert!(
            store.leaked_pins().is_empty(),
            "error path rolled pins back"
        );
    }

    /// A task without an implementation for the worker's arch is a typed
    /// `IncapableWorker` (the old panic path at the top of staging).
    #[test]
    fn stage_on_incapable_worker_is_typed_error() {
        let mut g = TaskGraph::new();
        let k = g.register_type("CPUONLY", true, false);
        let d = g.add_data(64, "d");
        let t = g.add_task(k, vec![(d, AccessMode::Read)], 1.0, "t");
        let p = simple(1, 1);
        let m = TableModel::builder()
            .set("CPUONLY", ArchClass::Cpu, TimeFn::Const(10.0))
            .build();
        let mut store = DataStore::new(&g, &p);
        let mut scratch = Scratch::default();
        let mut trace = Trace::new(p.worker_count());
        let mut stats = SimStats::default();
        let err = prepare_task(
            &g,
            &p,
            &m,
            &mut store,
            &cfg_default(),
            &mut trace,
            &mut stats,
            &mut scratch,
            WorkerId(1), // the GPU worker
            t,
            0.0,
            false,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SimError::IncapableWorker {
                task: t,
                worker: WorkerId(1),
            }
        );
        assert!(store.leaked_pins().is_empty());
    }

    fn cfg_default() -> SimConfig {
        SimConfig::default()
    }
}
