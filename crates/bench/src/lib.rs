//! # mp-bench — reproduction harness for every table and figure
//!
//! One module per experiment (see DESIGN.md's experiment index):
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`figures::table2`] | Table II — gain-heuristic worked example |
//! | [`figures::fig3`] | Fig. 3 — NOD worked example |
//! | [`figures::fig4`] | Fig. 4 — eviction-mechanism ablation (Cholesky 960×20, 1 GPU + 6 CPUs) |
//! | [`figures::fig5`] | Fig. 5 — dense potrf/getrf/geqrf vs Dmdas on both platforms |
//! | [`figures::fig6`] | Fig. 6 — TBFMM execution time vs GPU streams |
//! | [`figures::fig7`] | Fig. 7 — the sparse matrix table |
//! | [`figures::fig8`] | Fig. 8 — sparse QR ratios vs Dmdas |
//!
//! Each module returns plain row structs; the `repro` binary prints them
//! as the paper-style tables, and the criterion benches in `benches/`
//! time representative configurations.

pub mod figures;
pub mod harness;
pub mod replay;
pub mod report;

pub use harness::{make_scheduler, make_scheduler_factory, run_noisy, run_once, SCHEDULER_NAMES};
pub use replay::{replay, ReplayStats};
