//! One module per reproduced table/figure.

pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod table2;
