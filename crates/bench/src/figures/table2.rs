//! Table II — the gain-heuristic worked example, regenerated.

use mp_platform::types::ArchId;
use multiprio::GainTracker;

/// One cell row of the regenerated Table II.
#[derive(Clone, Debug, PartialEq)]
pub struct Table2 {
    /// `hd(a1)` and `hd(a2)` after observing the three tasks.
    pub hd: (f64, f64),
    /// `gain(t, a1)` for tasks A, B, C.
    pub gain_a1: [f64; 3],
    /// `gain(t, a2)` for tasks A, B, C.
    pub gain_a2: [f64; 3],
}

/// Regenerate Table II from the paper's δ values
/// (A: 1/20 ms, B: 5/10 ms, C: 20/10 ms).
pub fn run() -> Table2 {
    let a1 = ArchId(0);
    let a2 = ArchId(1);
    let cands = |d1: f64, d2: f64| {
        let mut v = vec![(a1, d1), (a2, d2)];
        v.sort_by(|x, y| x.1.total_cmp(&y.1));
        v
    };
    let tasks = [cands(1.0, 20.0), cands(5.0, 10.0), cands(20.0, 10.0)];
    let mut g = GainTracker::new();
    for t in &tasks {
        g.observe(t);
    }
    Table2 {
        hd: (g.hd(a1), g.hd(a2)),
        gain_a1: [
            g.gain(&tasks[0], a1),
            g.gain(&tasks[1], a1),
            g.gain(&tasks[2], a1),
        ],
        gain_a2: [
            g.gain(&tasks[0], a2),
            g.gain(&tasks[1], a2),
            g.gain(&tasks[2], a2),
        ],
    }
}

/// The paper's published values (3 decimal places).
pub const PAPER_GAIN_A1: [f64; 3] = [1.0, 0.631, 0.236];
/// Row 2 of the table.
pub const PAPER_GAIN_A2: [f64; 3] = [0.0, 0.368, 0.763];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regenerated_table_matches_paper() {
        let t = run();
        assert_eq!(t.hd, (19.0, 19.0));
        for i in 0..3 {
            assert!(
                (t.gain_a1[i] - PAPER_GAIN_A1[i]).abs() < 1e-3,
                "a1 task {i}"
            );
            assert!(
                (t.gain_a2[i] - PAPER_GAIN_A2[i]).abs() < 1e-3,
                "a2 task {i}"
            );
        }
    }
}
