//! Fig. 6 — TBFMM execution time on both platforms while varying the
//! number of GPU streams, for MultiPrio / Dmdas / HeteroPrio.
//!
//! Paper setup: 10⁶ particles, octree height 6, no user priorities.

use mp_apps::fmm::{fmm, Distribution, FmmConfig};
use mp_apps::fmm_model;
use mp_platform::presets::{amd_a100_streams, intel_v100_streams};

use crate::harness::run_noisy;

/// Execution-time noise for FMM kernels: particle-group kernels vary with
/// occupancy in ways a footprint-bucketed history model mispredicts;
/// published StarPU FMM calibration studies (paper refs [22, 25]) report
/// double-digit-percent errors on such irregular kernels.
pub const FMM_NOISE_CV: f64 = 0.2;

/// One measured point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Platform name.
    pub platform: String,
    /// GPU streams (workers per GPU).
    pub streams: usize,
    /// Scheduler name.
    pub sched: String,
    /// Execution (simulated) time in seconds.
    pub time_s: f64,
}

/// Problem scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// 50k particles, height 5 — seconds to build & run.
    Quick,
    /// The paper's 10⁶ particles, height 6.
    Full,
}

impl Scale {
    fn config(self) -> FmmConfig {
        match self {
            Scale::Quick => FmmConfig {
                particles: 50_000,
                tree_height: 5,
                group_size: 32,
                distribution: Distribution::Uniform,
                seed: 6,
            },
            Scale::Full => FmmConfig {
                seed: 6,
                ..FmmConfig::default()
            },
        }
    }
}

/// Run the stream sweep (paper: 3 schedulers × streams 1..=4 × 2 platforms).
pub fn run(scale: Scale, schedulers: &[&str], streams: &[usize]) -> Vec<Row> {
    let w = fmm(scale.config());
    let model = fmm_model();
    let mut rows = Vec::new();
    for &s in streams {
        for (pname, platform) in [
            ("Intel-V100", intel_v100_streams(s)),
            ("AMD-A100", amd_a100_streams(s)),
        ] {
            for sched in schedulers {
                let r = run_noisy(&w.graph, &platform, &model, sched, 6, FMM_NOISE_CV);
                rows.push(Row {
                    platform: pname.to_string(),
                    streams: s,
                    sched: sched.to_string(),
                    time_s: r.makespan / 1e6,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiprio_achieves_shortest_fmm_makespan() {
        // The paper's headline for Fig. 6: "MultiPrio stands out for
        // achieving the shortest makespan".
        let rows = run(Scale::Quick, &["multiprio", "dmdas", "heteroprio"], &[1, 2]);
        for platform in ["Intel-V100", "AMD-A100"] {
            for streams in [1usize, 2] {
                let of = |s: &str| {
                    rows.iter()
                        .find(|r| r.platform == platform && r.streams == streams && r.sched == s)
                        .unwrap()
                        .time_s
                };
                let (mp, dm, hp) = (of("multiprio"), of("dmdas"), of("heteroprio"));
                assert!(
                    mp <= dm * 1.02 && mp <= hp * 1.02,
                    "{platform}/{streams}: multiprio {mp:.3}s vs dmdas {dm:.3}s, heteroprio {hp:.3}s"
                );
            }
        }
    }
}
