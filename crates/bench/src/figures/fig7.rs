//! Fig. 7 — the sparse-matrix table, re-printed from the presets together
//! with the synthetic elimination-tree statistics our generator derives.

use mp_apps::sparseqr::{elimination_tree, Front, FIG7_MATRICES};

/// One row: published stats + generated-tree summary.
#[derive(Clone, Debug)]
pub struct Row {
    /// Matrix name.
    pub name: &'static str,
    /// Published rows/cols/nnz.
    pub rows: u64,
    /// Columns.
    pub cols: u64,
    /// Nonzeros.
    pub nnz: u64,
    /// Published op count (Gflop).
    pub gflops: f64,
    /// Fronts in our synthetic elimination tree.
    pub fronts: usize,
    /// Generated tree's total factorization Gflop (before task-level
    /// normalization pins it to the published value).
    pub tree_gflops: f64,
}

/// Regenerate the table.
pub fn run(seed: u64) -> Vec<Row> {
    FIG7_MATRICES
        .iter()
        .map(|m| {
            let tree = elimination_tree(m, seed);
            Row {
                name: m.name,
                rows: m.rows,
                cols: m.cols,
                nnz: m.nnz,
                gflops: m.gflops,
                fronts: tree.len(),
                tree_gflops: tree.iter().map(Front::factor_flops).sum::<f64>() / 1e9,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn ten_rows_with_sane_trees() {
        let rows = super::run(7);
        assert_eq!(rows.len(), 10);
        for r in &rows {
            let ratio = r.tree_gflops / r.gflops;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{}: tree {} Gflop vs published {}",
                r.name,
                r.tree_gflops,
                r.gflops
            );
        }
    }
}
