//! Fig. 4 — the eviction-mechanism ablation.
//!
//! Paper setup: simulated Cholesky factorization of a 960×20-tile matrix
//! on a node with 1 GPU and 6 CPU workers; MultiPrio with the eviction
//! mechanism cuts GPU idle time from 29% to 1% and shortens the makespan.

use mp_apps::dense::{potrf, DenseConfig};
use mp_apps::dense_model;
use mp_platform::presets::fig4 as fig4_platform;
use mp_trace::analysis::arch_idle_pct;

use crate::harness::run_once;

/// One ablation row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Eviction mechanism on?
    pub eviction: bool,
    /// Makespan in µs.
    pub makespan: f64,
    /// GPU idle percentage (the figure's headline number).
    pub gpu_idle_pct: f64,
    /// Mean CPU idle percentage.
    pub cpu_idle_pct: f64,
}

/// Run both configurations of the ablation.
pub fn run() -> Vec<Row> {
    let w = potrf(DenseConfig::new(20 * 960, 960));
    let platform = fig4_platform();
    let model = dense_model();
    let gpu_arch = platform
        .archs()
        .iter()
        .find(|a| a.class == mp_platform::types::ArchClass::Gpu)
        .expect("fig4 platform has a GPU")
        .id;
    let cpu_arch = mp_platform::types::ArchId(0);
    ["multiprio-noevict", "multiprio"]
        .iter()
        .map(|sched| {
            let r = run_once(&w.graph, &platform, &model, sched, 4);
            Row {
                eviction: *sched == "multiprio",
                makespan: r.makespan,
                gpu_idle_pct: arch_idle_pct(&r.trace, &platform, gpu_arch),
                cpu_idle_pct: arch_idle_pct(&r.trace, &platform, cpu_arch),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn eviction_reduces_gpu_idle_and_makespan() {
        let rows = super::run();
        let (without, with) = (&rows[0], &rows[1]);
        assert!(!without.eviction && with.eviction);
        assert!(
            with.gpu_idle_pct < without.gpu_idle_pct,
            "paper: 29% -> 1%; got {:.1}% -> {:.1}%",
            without.gpu_idle_pct,
            with.gpu_idle_pct
        );
        assert!(
            with.makespan <= without.makespan,
            "eviction must not lengthen the makespan ({} vs {})",
            with.makespan,
            without.makespan
        );
    }
}
