//! Fig. 8 — sparse multifrontal QR: per-matrix performance ratio of each
//! scheduler relative to Dmdas (higher = better), on both platforms with
//! four streams per GPU.
//!
//! Paper headline: MultiPrio averages +31% over Dmdas on Intel-V100 and
//! +12% on AMD-A100 (up to +20% on the larger matrices there).

use mp_apps::sparseqr::{sparse_qr, SparseQrConfig, FIG7_MATRICES};
use mp_apps::sparseqr_model;
use mp_platform::presets::{amd_a100_streams, intel_v100_streams};

use crate::harness::run_noisy;

/// Execution-time noise for sparse frontal kernels: front shapes vary
/// wildly and assembly/memory effects dominate small fronts, so
/// history-model predictions err well beyond the dense case.
pub const SPARSE_NOISE_CV: f64 = 0.25;

/// One measured point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Platform name.
    pub platform: String,
    /// Matrix name.
    pub matrix: &'static str,
    /// Scheduler name.
    pub sched: String,
    /// Makespan in seconds.
    pub time_s: f64,
    /// Ratio vs Dmdas on the same platform/matrix (1.0 = parity).
    pub ratio_vs_dmdas: f64,
}

/// Which matrices to include.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// The four smallest matrices.
    Quick,
    /// All ten matrices of Fig. 7.
    Full,
}

/// Run the comparison (paper: multiprio, dmdas, heteroprio).
pub fn run(scale: Scale, schedulers: &[&str]) -> Vec<Row> {
    let matrices: Vec<_> = match scale {
        Scale::Quick => FIG7_MATRICES.iter().take(4).collect(),
        Scale::Full => FIG7_MATRICES.iter().collect(),
    };
    let model = sparseqr_model();
    let mut rows = Vec::new();
    for (pname, platform) in [
        ("Intel-V100", intel_v100_streams(4)),
        ("AMD-A100", amd_a100_streams(4)),
    ] {
        for meta in &matrices {
            let w = sparse_qr(meta, SparseQrConfig::default());
            let mut times: Vec<(String, f64)> = Vec::new();
            for sched in schedulers {
                let r = run_noisy(&w.graph, &platform, &model, sched, 8, SPARSE_NOISE_CV);
                times.push((sched.to_string(), r.makespan / 1e6));
            }
            let dmdas_time = times
                .iter()
                .find(|(s, _)| s == "dmdas")
                .map(|&(_, t)| t)
                .unwrap_or(f64::NAN);
            for (sched, time_s) in times {
                rows.push(Row {
                    platform: pname.to_string(),
                    matrix: meta.name,
                    sched,
                    time_s,
                    ratio_vs_dmdas: dmdas_time / time_s,
                });
            }
        }
    }
    rows
}

/// Mean MultiPrio ratio per platform (the paper's +31% / +12% numbers).
pub fn mean_multiprio_ratio(rows: &[Row]) -> Vec<(String, f64)> {
    ["Intel-V100", "AMD-A100"]
        .iter()
        .map(|p| {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.platform == *p && r.sched == "multiprio")
                .map(|r| r.ratio_vs_dmdas)
                .collect();
            (p.to_string(), v.iter().sum::<f64>() / v.len().max(1) as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiprio_beats_dmdas_on_sparse_qr() {
        let rows = run(Scale::Quick, &["multiprio", "dmdas"]);
        let means = mean_multiprio_ratio(&rows);
        for (platform, mean) in &means {
            assert!(
                *mean >= 1.0,
                "{platform}: mean multiprio/dmdas ratio {mean:.3} — the paper reports \
                 +31%/+12% average gains on this workload"
            );
        }
    }
}
