//! Fig. 3 — the NOD criticality worked example, regenerated.

use mp_dag::{AccessMode, TaskGraph, TaskId};
use multiprio::nod;

/// The two NOD values of the figure: `(NOD(T2), NOD(T3))`.
pub fn run() -> (f64, f64) {
    let mut g = TaskGraph::new();
    let k = g.register_type("K", true, true);
    let d = g.add_data(1, "d");
    let mut mk = |name: &str| g.add_task(k, vec![(d, AccessMode::Read)], 1.0, name);
    let t2 = mk("T2");
    let t3 = mk("T3");
    let t4 = mk("T4");
    let t5 = mk("T5");
    let t6 = mk("T6");
    let t7 = mk("T7");
    g.add_edge(t2, t4);
    g.add_edge(t2, t5);
    g.add_edge(t2, t6);
    g.add_edge(t3, t6);
    g.add_edge(t3, t7);
    g.add_edge(t4, t7);
    let _ = TaskId(0);
    (nod(&g, t2), nod(&g, t3))
}

#[cfg(test)]
mod tests {
    #[test]
    fn matches_paper_values() {
        let (n2, n3) = super::run();
        assert_eq!(n2, 2.5, "NOD(T2)");
        assert_eq!(n3, 1.0, "NOD(T3)");
    }
}
