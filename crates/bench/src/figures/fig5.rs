//! Fig. 5 — dense kernels (potrf/getrf/geqrf) on both platforms:
//! GFlop/s per (kernel, matrix size, tile size, scheduler) and the
//! MultiPrio gain/loss relative to Dmdas.
//!
//! Paper protocol: for each (tile size, scheduler) run over several
//! matrix sizes and keep the best-performing tile per point. Tile sizes:
//! {960, 1920, 3840} on AMD-A100, {640, 1280, 2560} on Intel-V100.

use mp_apps::dense::{geqrf, getrf, potrf, DenseConfig, DenseWorkload};
use mp_apps::dense_model;
use mp_platform::presets::{amd_a100_streams, intel_v100_streams};
use mp_platform::types::Platform;

use crate::harness::run_once;

/// One measured point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Platform name.
    pub platform: String,
    /// Kernel (`potrf` | `getrf` | `geqrf`).
    pub kernel: &'static str,
    /// Matrix dimension.
    pub n: usize,
    /// Tile size used (best over the sweep for this point).
    pub tile: usize,
    /// Scheduler name.
    pub sched: String,
    /// Achieved GFlop/s.
    pub gflops: f64,
}

/// Which matrix sizes to sweep; `quick` keeps simulation sizes that run
/// in seconds, `full` approaches the paper's (larger) range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// CI-friendly sizes.
    Quick,
    /// Paper-approaching sizes (minutes of simulation).
    Full,
}

fn workload(kernel: &'static str, cfg: DenseConfig) -> DenseWorkload {
    match kernel {
        "potrf" => potrf(cfg),
        "getrf" => getrf(cfg),
        "geqrf" => geqrf(cfg),
        other => panic!("unknown dense kernel {other}"),
    }
}

/// Run the sweep for the given schedulers (paper: multiprio vs dmdas).
pub fn run(scale: Scale, schedulers: &[&str]) -> Vec<Row> {
    let platforms: Vec<(Platform, Vec<usize>)> = vec![
        (intel_v100_streams(2), vec![640, 1280, 2560]),
        (amd_a100_streams(2), vec![960, 1920, 3840]),
    ];
    let multipliers: Vec<usize> = match scale {
        Scale::Quick => vec![8, 16],
        Scale::Full => vec![8, 16, 24, 32, 40],
    };
    let model = dense_model();
    let mut rows = Vec::new();
    for (platform, tiles) in &platforms {
        for kernel in ["potrf", "getrf", "geqrf"] {
            for &mult in &multipliers {
                for sched in schedulers {
                    // Best tile for this (size multiplier, scheduler) point.
                    let mut best: Option<Row> = None;
                    for &tile in tiles {
                        let n = mult * tiles[0].max(960); // common n per point
                        if n < tile {
                            continue;
                        }
                        let w = workload(kernel, DenseConfig::new(n, tile));
                        let r = run_once(&w.graph, platform, &model, sched, 5);
                        let gf = r.gflops(w.total_flops);
                        if best.as_ref().is_none_or(|b| gf > b.gflops) {
                            best = Some(Row {
                                platform: platform.name.clone(),
                                kernel,
                                n,
                                tile,
                                sched: sched.to_string(),
                                gflops: gf,
                            });
                        }
                    }
                    rows.push(best.expect("at least one tile fits"));
                }
            }
        }
    }
    rows
}

/// MultiPrio's relative gain over Dmdas for matching points, in percent.
pub fn gains_vs_dmdas(rows: &[Row]) -> Vec<(String, &'static str, usize, f64)> {
    let mut out = Vec::new();
    for r in rows.iter().filter(|r| r.sched == "multiprio") {
        if let Some(d) = rows.iter().find(|d| {
            d.sched == "dmdas" && d.platform == r.platform && d.kernel == r.kernel && d.n == r.n
        }) {
            out.push((
                r.platform.clone(),
                r.kernel,
                r.n,
                (r.gflops / d.gflops - 1.0) * 100.0,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_comparable_schedulers() {
        let rows = run(Scale::Quick, &["multiprio", "dmdas"]);
        // 2 platforms × 3 kernels × 2 sizes × 2 schedulers.
        assert_eq!(rows.len(), 24);
        let gains = gains_vs_dmdas(&rows);
        assert_eq!(gains.len(), 12);
        for (platform, kernel, n, gain) in &gains {
            // The paper's Fig. 5 band: gains/losses within ±35%.
            assert!(
                (-60.0..=60.0).contains(gain),
                "{platform}/{kernel}/{n}: multiprio vs dmdas gain {gain:.1}% out of band"
            );
        }
    }
}
