//! Scheduler factory and single-run helper shared by all experiments.

use mp_dag::TaskGraph;
use mp_perfmodel::PerfModel;
use mp_platform::types::Platform;
use mp_sched::{
    DequeModelScheduler, DmVariant, FifoScheduler, HeteroPrioScheduler, LwsScheduler,
    RandomScheduler, Scheduler,
};
use mp_sim::{simulate, SimConfig, SimResult};
use multiprio::{MultiPrioConfig, MultiPrioScheduler, SharedGainTracker};

/// Every constructible scheduler name.
pub const SCHEDULER_NAMES: [&str; 14] = [
    "multiprio",
    "multiprio-reference",
    "multiprio-noevict",
    "multiprio-nolocality",
    "multiprio-nocrit",
    "multiprio-brwtotal",
    "multiprio-energy",
    "dmdas",
    "dmda",
    "dm",
    "heteroprio",
    "lws",
    "fifo",
    "prio",
];

/// Build a scheduler by name (panics on unknown names — the caller is
/// always one of our own tables).
pub fn make_scheduler(name: &str) -> Box<dyn Scheduler> {
    match name {
        "multiprio" => Box::new(MultiPrioScheduler::with_defaults()),
        "multiprio-reference" => Box::new(multiprio::ReferenceScheduler::with_defaults()),
        "multiprio-noevict" => {
            Box::new(MultiPrioScheduler::new(MultiPrioConfig::without_eviction()))
        }
        "multiprio-nolocality" => {
            Box::new(MultiPrioScheduler::new(MultiPrioConfig::without_locality()))
        }
        "multiprio-nocrit" => Box::new(MultiPrioScheduler::new(
            MultiPrioConfig::without_criticality(),
        )),
        "multiprio-brwtotal" => {
            Box::new(MultiPrioScheduler::new(MultiPrioConfig::with_total_brw()))
        }
        "multiprio-energy" => Box::new(MultiPrioScheduler::new(MultiPrioConfig::energy_aware())),
        "dmdas" => Box::new(DequeModelScheduler::new(DmVariant::Dmdas)),
        "dmda" => Box::new(DequeModelScheduler::new(DmVariant::Dmda)),
        "dm" => Box::new(DequeModelScheduler::new(DmVariant::Dm)),
        "heteroprio" => Box::new(HeteroPrioScheduler::new()),
        "lws" => Box::new(LwsScheduler::new()),
        "prio" => Box::new(mp_sched::EagerPrioScheduler::new()),
        "fifo" => Box::new(FifoScheduler::new()),
        "random" => Box::new(RandomScheduler::new(0xbad5eed)),
        other => panic!("unknown scheduler '{other}'"),
    }
}

/// A factory building fresh instances of the named scheduler, for the
/// sharded runtime front-end (`Runtime::run_sharded`). MultiPrio
/// variants share one [`SharedGainTracker`] across every instance the
/// factory builds, so per-shard copies agree on the running-max `hd(a)`
/// term of the gain score (Eq. 1) exactly as a single instance would.
pub fn make_scheduler_factory(name: &str) -> Box<dyn Fn() -> Box<dyn Scheduler> + Send + Sync> {
    let cfg = match name {
        "multiprio" => Some(MultiPrioConfig::default()),
        "multiprio-noevict" => Some(MultiPrioConfig::without_eviction()),
        "multiprio-nolocality" => Some(MultiPrioConfig::without_locality()),
        "multiprio-nocrit" => Some(MultiPrioConfig::without_criticality()),
        "multiprio-brwtotal" => Some(MultiPrioConfig::with_total_brw()),
        "multiprio-energy" => Some(MultiPrioConfig::energy_aware()),
        _ => None,
    };
    match cfg {
        Some(cfg) => {
            let gain = std::sync::Arc::new(SharedGainTracker::new());
            Box::new(move || Box::new(MultiPrioScheduler::with_shared_gain(cfg, gain.clone())))
        }
        None => {
            let name = name.to_string();
            Box::new(move || make_scheduler(&name))
        }
    }
}

/// Simulate `graph` on `platform` under the named scheduler, without
/// execution-time noise (regular workloads: the history model predicts
/// dense tile kernels almost exactly).
pub fn run_once(
    graph: &TaskGraph,
    platform: &Platform,
    model: &dyn PerfModel,
    sched: &str,
    seed: u64,
) -> SimResult {
    run_noisy(graph, platform, model, sched, seed, 0.0)
}

/// Simulate with log-normal execution-time noise of coefficient of
/// variation `cv`. Irregular workloads (FMM particle groups, sparse
/// fronts) are mispredicted by history-based models in practice — the
/// paper's dynamic-vs-static argument rests on it — so the Fig. 6 and
/// Fig. 8 experiments run with a calibrated `cv` (see EXPERIMENTS.md).
pub fn run_noisy(
    graph: &TaskGraph,
    platform: &Platform,
    model: &dyn PerfModel,
    sched: &str,
    seed: u64,
    cv: f64,
) -> SimResult {
    let mut s = make_scheduler(sched);
    simulate(
        graph,
        platform,
        model,
        s.as_mut(),
        SimConfig::seeded(seed).with_noise(cv),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_apps::random::{random_dag, random_model, RandomDagConfig};
    use mp_platform::presets::simple;

    #[test]
    fn factory_builds_every_name() {
        for name in SCHEDULER_NAMES {
            let s = make_scheduler(name);
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn shard_factory_builds_every_name() {
        for name in SCHEDULER_NAMES {
            let f = make_scheduler_factory(name);
            let a = f();
            let b = f();
            assert_eq!(a.name(), b.name());
            assert!(!a.name().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "unknown scheduler")]
    fn factory_rejects_unknown() {
        make_scheduler("heft-galactic");
    }

    #[test]
    fn run_once_completes() {
        let g = random_dag(RandomDagConfig {
            layers: 4,
            width: 6,
            ..Default::default()
        });
        let m = random_model();
        let p = simple(2, 1);
        for name in ["multiprio", "dmdas", "heteroprio"] {
            let r = run_once(&g, &p, &m, name, 1);
            assert_eq!(r.stats.tasks, g.task_count(), "{name}");
        }
    }
}
