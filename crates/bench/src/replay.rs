//! Scheduler-only replay driver: drives a [`Scheduler`] through an entire
//! DAG without the simulator's data-movement machinery, isolating the
//! cost of the scheduling decisions themselves (push + pop + bookkeeping).
//!
//! Used by the `scaling` bench for the per-decision cost numbers in
//! `BENCH_scaling.json` and by the allocation-freedom test: the view
//! handed to the scheduler is static (all data in RAM, all workers free),
//! so every cycle spent is scheduler-side.

use std::time::{Duration, Instant};

use mp_dag::ids::{DataId, TaskId};
use mp_dag::TaskGraph;
use mp_perfmodel::{Estimator, PerfModel};
use mp_platform::types::{MemNodeId, Platform, WorkerId};
use mp_sched::api::{DataLocator, LoadInfo, SchedView, Scheduler};

/// All data lives in RAM (node 0); no replicas move during a replay.
struct RamLocator;

impl DataLocator for RamLocator {
    fn is_on(&self, _d: DataId, m: MemNodeId) -> bool {
        m == MemNodeId(0)
    }

    fn holders(&self, _d: DataId) -> Vec<MemNodeId> {
        vec![MemNodeId(0)]
    }
}

/// Every worker is permanently free.
struct FreeLoad;

impl LoadInfo for FreeLoad {
    fn busy_until(&self, _w: WorkerId) -> f64 {
        0.0
    }
}

/// Counters of one replay run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayStats {
    /// Tasks scheduled (== graph task count on success).
    pub scheduled: usize,
    /// Total `pop` calls, including ones that returned no task.
    pub pops: usize,
    /// `pop` calls that returned a task.
    pub hits: usize,
    /// Wall-clock time of the whole replay.
    pub wall: Duration,
    /// Order fingerprint: FNV-1a over the (worker, task) pop sequence.
    /// Two runs of a deterministic scheduler must agree bit-for-bit.
    pub schedule_hash: u64,
}

impl ReplayStats {
    /// Mean wall-clock nanoseconds per scheduling decision (a decision =
    /// one push + the pops needed to place the task).
    pub fn ns_per_decision(&self) -> f64 {
        if self.scheduled == 0 {
            return 0.0;
        }
        self.wall.as_nanos() as f64 / self.scheduled as f64
    }
}

fn fnv1a(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x100_0000_01b3)
}

/// Replay `graph` through `sched`: push tasks as they become ready,
/// round-robin idle workers over `pop`, release successors on every hit.
/// Panics if the scheduler stops yielding tasks while some remain.
pub fn replay(
    graph: &TaskGraph,
    platform: &Platform,
    model: &dyn PerfModel,
    sched: &mut dyn Scheduler,
) -> ReplayStats {
    let n = graph.task_count();
    let nw = platform.worker_count();
    let loc = RamLocator;
    let load = FreeLoad;
    let mut indeg: Vec<usize> = (0..n)
        .map(|i| graph.preds(TaskId::from_index(i)).len())
        .collect();
    let mut stats = ReplayStats::default();
    let t0 = Instant::now();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;

    let view = SchedView {
        est: Estimator::new(graph, platform, model),
        loc: &loc,
        load: &load,
        now: 0.0,
    };
    for (i, &d) in indeg.iter().enumerate().take(n) {
        if d == 0 {
            sched.push(TaskId::from_index(i), None, &view);
        }
    }
    // Round-robin pops; a full idle lap without a hit while tasks remain
    // means the scheduler deadlocked.
    let mut w = 0usize;
    let mut idle_lap = 0usize;
    while stats.scheduled < n {
        let wid = WorkerId::from_index(w);
        w = (w + 1) % nw;
        stats.pops += 1;
        match sched.pop(wid, &view) {
            Some(t) => {
                stats.hits += 1;
                stats.scheduled += 1;
                idle_lap = 0;
                hash = fnv1a(hash, ((wid.index() as u64) << 32) | u64::from(t.0));
                for &s in graph.succs(t) {
                    indeg[s.index()] -= 1;
                    if indeg[s.index()] == 0 {
                        sched.push(s, Some(wid), &view);
                    }
                }
            }
            None => {
                idle_lap += 1;
                assert!(
                    idle_lap <= nw,
                    "scheduler '{}' deadlocked in replay: {} of {n} tasks scheduled, \
                     {} pending inside the scheduler",
                    sched.name(),
                    stats.scheduled,
                    sched.pending()
                );
            }
        }
    }
    stats.wall = t0.elapsed();
    stats.schedule_hash = hash;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::make_scheduler;
    use mp_apps::random::{random_dag, random_model, RandomDagConfig};
    use mp_platform::presets::simple;

    #[test]
    fn replay_schedules_every_task_deterministically() {
        let g = random_dag(RandomDagConfig {
            layers: 8,
            width: 10,
            ..Default::default()
        });
        let m = random_model();
        let p = simple(3, 1);
        for name in ["multiprio", "dmdas", "heteroprio", "lws", "fifo"] {
            let run = || {
                let mut s = make_scheduler(name);
                replay(&g, &p, &m, s.as_mut())
            };
            let (a, b) = (run(), run());
            assert_eq!(a.scheduled, g.task_count(), "{name}");
            assert_eq!(
                a.schedule_hash, b.schedule_hash,
                "{name} must be deterministic"
            );
        }
    }
}
