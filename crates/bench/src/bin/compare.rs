//! `compare` — one-shot scheduler comparison on any built-in workload,
//! rendered as a markdown table.
//!
//! ```text
//! compare <workload> [platform] [schedulers...]
//!   workload : potrf | getrf | geqrf | fmm | sparseqr:<matrix> | hier | random
//!   platform : intel (default) | amd | simple
//! ```
//!
//! Example: `compare sparseqr:e18 intel multiprio dmdas heteroprio`

use mp_apps::dense::{geqrf, getrf, potrf, DenseConfig};
use mp_apps::fmm::{fmm, Distribution, FmmConfig};
use mp_apps::hierarchical::{hierarchical, hierarchical_model, HierConfig};
use mp_apps::random::{random_dag, random_model, RandomDagConfig};
use mp_apps::sparseqr::{matrix, sparse_qr, SparseQrConfig};
use mp_apps::{dense_model, fmm_model, sparseqr_model};
use mp_bench::figures::fig8::SPARSE_NOISE_CV;
use mp_bench::report::{compare, to_markdown};
use mp_dag::TaskGraph;
use mp_perfmodel::TableModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args.first().map(String::as_str).unwrap_or("potrf");
    let platform = match args.get(1).map(String::as_str) {
        Some("amd") => mp_platform::presets::amd_a100_streams(2),
        Some("simple") => mp_platform::presets::simple(4, 1),
        _ => mp_platform::presets::intel_v100_streams(2),
    };
    let mut schedulers: Vec<&str> = args.iter().skip(2).map(String::as_str).collect();
    if schedulers.is_empty() {
        schedulers = vec!["dmdas", "multiprio", "heteroprio", "lws", "fifo"];
    }

    let (graph, model, noise): (TaskGraph, TableModel, f64) = match workload {
        "potrf" => (
            potrf(DenseConfig::new(16 * 960, 960)).graph,
            dense_model(),
            0.0,
        ),
        "getrf" => (
            getrf(DenseConfig::new(12 * 960, 960)).graph,
            dense_model(),
            0.0,
        ),
        "geqrf" => (
            geqrf(DenseConfig::new(12 * 960, 960)).graph,
            dense_model(),
            0.0,
        ),
        "fmm" => (
            fmm(FmmConfig {
                particles: 100_000,
                tree_height: 5,
                group_size: 32,
                distribution: Distribution::Uniform,
                seed: 6,
            })
            .graph,
            fmm_model(),
            0.2,
        ),
        "hier" => (
            hierarchical(HierConfig::default()).graph,
            hierarchical_model(),
            0.0,
        ),
        "random" => (random_dag(RandomDagConfig::default()), random_model(), 0.1),
        w if w.starts_with("sparseqr:") => {
            let name = &w["sparseqr:".len()..];
            let meta = matrix(name).unwrap_or_else(|| {
                eprintln!("unknown matrix '{name}' (see Fig. 7 presets)");
                std::process::exit(1)
            });
            (
                sparse_qr(meta, SparseQrConfig::default()).graph,
                sparseqr_model(),
                SPARSE_NOISE_CV,
            )
        }
        other => {
            eprintln!("unknown workload '{other}'");
            std::process::exit(1)
        }
    };

    let rows = compare(&graph, &platform, &model, &schedulers, 7, noise);
    let title = format!(
        "{workload} on {} ({} tasks, noise cv {noise})",
        platform.name,
        graph.task_count()
    );
    print!("{}", to_markdown(&title, &rows));
}
