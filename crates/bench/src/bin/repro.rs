//! Reproduction driver: regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--quick|--full] [--trace-out <path>] [--front <multiprio|relaxed>]
//!       [--kill-worker W:N]... [--transient-prob P] [--retry-max M]
//!       [--cache] [--warm-runs N] [--mutate-frac F]
//!       [--cache-dir PATH] [--crash-after N]
//!       [--serve] [--arrivals poisson:RATE|bursty:RATE[:BURST]] [--tenants N]
//!       [--workers W] [--submissions N] [--policy NAME]
//!       [table2] [fig3] [fig4] [fig5] [fig6] [fig7] [fig8] [probe <matrix>]
//! ```
//!
//! With no experiment names, runs everything. `--quick` (default) uses
//! CI-scale problem sizes; `--full` approaches the paper's sizes.
//! `--trace-out <path>` runs one fixed seeded potrf under MultiPrio and
//! writes a Chrome `trace_event` JSON timeline (open with Perfetto,
//! <https://ui.perfetto.dev>); build with `--features obs` to include
//! the scheduler's pop/hold decision instants.
//!
//! `--front relaxed` swaps the `--trace-out` run's scheduler for the
//! relaxed multi-queue's deterministic sequential twin (DESIGN.md §6c)
//! and reports its measured rank error — the timeline stays diffable.
//!
//! The fault flags apply to the `--trace-out` run (DESIGN.md §9):
//! `--kill-worker W:N` (repeatable) kills worker `W` after it completes
//! `N` tasks, `--transient-prob P` fails each attempt with deterministic
//! pseudo-probability `P`, and `--retry-max M` caps attempts per task
//! (default 4). All deterministic: the same flags reproduce the same
//! timeline, failures included.
//!
//! `--cache` demonstrates the result cache (DESIGN.md §12) on a seeded
//! potrf: one cold run populates a content-addressed cache, then
//! `--warm-runs N` (default 2) warm runs replay it, printing per-run
//! hit-rate and warm/cold wall-time speedup. `--mutate-frac F`
//! additionally resubmits the DAG with a fraction `F` of its tasks
//! mutated and reports how much of the graph re-executed (the dirty
//! cone) versus served from cache.
//!
//! `--cache-dir PATH` makes the `--cache` demo's result cache
//! **persistent** (DESIGN.md §14): the cache opens from `PATH`'s
//! checksummed segment log (printing how many records loaded and how
//! many a recovery rule skipped) and streams every insert back to it —
//! so a second invocation with the same `PATH` starts warm across the
//! process restart. `--crash-after N` kills the log writer after `N`
//! record-stream bytes and truncates to the durable frontier at exit,
//! simulating a mid-write crash; the next invocation demonstrates
//! torn-write recovery (a cold-degraded prefix, never wrong data).
//!
//! `--serve` runs the open-loop multi-tenant serving mode (DESIGN.md
//! §13) in virtual time: sub-DAGs stream in from `--tenants N` clients
//! (graded fair-share weights N..1) under `--arrivals` (default: a
//! Poisson process at ~80% of the platform's task throughput), with
//! bounded-queue admission control. Prints sustained decisions/sec,
//! p50/p99 *scheduling latency*, the admission ledger and the
//! per-tenant fairness breakdown. Bit-deterministic: the same flags
//! print the same numbers on every machine.
//!
//! `--serve --cache` runs the cache-backed warm-serving scenario
//! (DESIGN.md §13): the same deterministic sub-DAG stream is served
//! once cold (no cache) and once against a fresh result cache, where
//! every resubmission over a tenant's slot pool after the first hits
//! end to end and bypasses the scheduler. Defaults to a 20x-overload
//! arrival rate with unbounded admission so the warm run is
//! arrival-limited rather than service-limited. `--mutate-frac F`
//! perturbs a fraction of arrivals so only their dirty cones
//! re-execute. Prints hit-rate and warm/cold served-tasks/sec speedup.

use mp_bench::figures::{fig3, fig4, fig5, fig6, fig7, fig8, table2};
use mp_sim::{FaultPlan, RetryPolicy};

/// Pull `--flag <value>` out of `args`, exiting with usage on a missing
/// value. Returns `None` when the flag is absent.
fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    args.remove(i);
    if i < args.len() {
        Some(args.remove(i))
    } else {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = take_value(&mut args, "--trace-out");
    let front = take_value(&mut args, "--front").unwrap_or_else(|| "multiprio".to_string());
    if !matches!(front.as_str(), "multiprio" | "relaxed") {
        eprintln!("--front expects 'multiprio' or 'relaxed'");
        std::process::exit(2);
    }
    let mut faults = FaultPlan::default();
    while let Some(spec) = take_value(&mut args, "--kill-worker") {
        let (w, n) = spec
            .split_once(':')
            .and_then(|(w, n)| Some((w.parse().ok()?, n.parse().ok()?)))
            .unwrap_or_else(|| {
                eprintln!("--kill-worker expects W:N (worker index : tasks before death)");
                std::process::exit(2);
            });
        faults = faults.kill_worker(w, n);
    }
    if let Some(p) = take_value(&mut args, "--transient-prob") {
        faults.transient_fail_prob = p.parse().unwrap_or_else(|_| {
            eprintln!("--transient-prob expects a probability in [0, 1]");
            std::process::exit(2);
        });
    }
    let retry_max: u32 = take_value(&mut args, "--retry-max").map_or(4, |m| {
        m.parse().unwrap_or_else(|_| {
            eprintln!("--retry-max expects a positive integer");
            std::process::exit(2);
        })
    });
    if (faults.kills_any() || faults.transient_fail_prob > 0.0) && trace_out.is_none() {
        eprintln!("fault flags apply to the --trace-out run; add --trace-out <path>");
        std::process::exit(2);
    }
    let cache_mode = args
        .iter()
        .position(|a| a == "--cache")
        .map(|i| args.remove(i))
        .is_some();
    let warm_runs = take_value(&mut args, "--warm-runs").map(|v| {
        v.parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                eprintln!("--warm-runs expects a positive integer");
                std::process::exit(2);
            })
    });
    let mutate_frac = take_value(&mut args, "--mutate-frac").map(|v| {
        v.parse::<f64>()
            .ok()
            .filter(|f| (0.0..=1.0).contains(f))
            .unwrap_or_else(|| {
                eprintln!("--mutate-frac expects a fraction in [0, 1]");
                std::process::exit(2);
            })
    });
    if (warm_runs.is_some() || mutate_frac.is_some()) && !cache_mode {
        eprintln!("--warm-runs / --mutate-frac apply to the --cache run; add --cache");
        std::process::exit(2);
    }
    let cache_dir = take_value(&mut args, "--cache-dir");
    let crash_after = take_value(&mut args, "--crash-after").map(|v| {
        v.parse::<u64>().unwrap_or_else(|_| {
            eprintln!("--crash-after expects a byte count");
            std::process::exit(2);
        })
    });
    if crash_after.is_some() && cache_dir.is_none() {
        eprintln!("--crash-after applies to the persistent cache; add --cache-dir <path>");
        std::process::exit(2);
    }
    let serve_mode = args
        .iter()
        .position(|a| a == "--serve")
        .map(|i| args.remove(i))
        .is_some();
    if serve_mode && warm_runs.is_some() {
        eprintln!("--warm-runs applies to the closed-DAG --cache demo, not --serve --cache");
        std::process::exit(2);
    }
    if cache_dir.is_some() && (!cache_mode || serve_mode) {
        eprintln!("--cache-dir applies to the closed-DAG --cache demo; add --cache");
        std::process::exit(2);
    }
    let arrivals = take_value(&mut args, "--arrivals");
    let positive = |flag: &str, v: String| {
        v.parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                eprintln!("{flag} expects a positive integer");
                std::process::exit(2);
            })
    };
    let tenants = take_value(&mut args, "--tenants").map(|v| positive("--tenants", v));
    let workers = take_value(&mut args, "--workers").map(|v| positive("--workers", v));
    let submissions = take_value(&mut args, "--submissions").map(|v| positive("--submissions", v));
    let policy = take_value(&mut args, "--policy");
    if !serve_mode
        && (arrivals.is_some()
            || tenants.is_some()
            || workers.is_some()
            || submissions.is_some()
            || policy.is_some())
    {
        eprintln!("--arrivals/--tenants/--workers/--submissions/--policy need --serve");
        std::process::exit(2);
    }
    if let Some(path) = trace_out {
        export_trace(&path, &front, faults, RetryPolicy::new(retry_max, 0.0));
        return;
    }
    let full = args.iter().any(|a| a == "--full");
    if serve_mode && cache_mode {
        serve_cache_demo(
            arrivals,
            tenants.unwrap_or(4),
            workers.unwrap_or(16),
            submissions.unwrap_or(if full { 10_000 } else { 1_000 }),
            policy.as_deref().unwrap_or("prio"),
            mutate_frac.unwrap_or(0.0),
        );
        return;
    }
    if cache_mode {
        cache_demo(
            full,
            warm_runs.unwrap_or(2),
            mutate_frac.unwrap_or(0.0),
            cache_dir,
            crash_after,
        );
        return;
    }
    if serve_mode {
        serve_demo(
            arrivals,
            tenants.unwrap_or(4),
            workers.unwrap_or(16),
            submissions.unwrap_or(if full { 50_000 } else { 5_000 }),
            policy.as_deref().unwrap_or("prio"),
        );
        return;
    }
    let names: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let want = |n: &str| {
        names.is_empty() || names.contains(&n) || (n == "probe" && names.first() == Some(&"probe"))
    };

    if names.first() == Some(&"probe") {
        probe(names.get(1).copied().unwrap_or("TF17"));
        return;
    }

    if want("table2") {
        let t = table2::run();
        println!("== Table II: gain heuristic worked example ==");
        println!("hd(a1) = {}, hd(a2) = {} (paper: 19, 19)", t.hd.0, t.hd.1);
        println!(
            "gain(t,a1): {:.3} {:.3} {:.3}   (paper: 1.000 0.631 0.236)",
            t.gain_a1[0], t.gain_a1[1], t.gain_a1[2]
        );
        println!(
            "gain(t,a2): {:.3} {:.3} {:.3}   (paper: 0.000 0.368 0.763)",
            t.gain_a2[0], t.gain_a2[1], t.gain_a2[2]
        );
        println!();
    }
    if want("fig3") {
        let (n2, n3) = fig3::run();
        println!("== Fig. 3: NOD criticality example ==");
        println!("NOD(T2) = {n2} (paper: 2.5), NOD(T3) = {n3} (paper: 1)");
        println!();
    }
    if want("fig4") {
        println!("== Fig. 4: eviction-mechanism ablation (potrf 960x20, 1 GPU + 6 CPUs) ==");
        for r in fig4::run() {
            println!(
                "eviction={:5}  makespan={:10.1} us  gpu_idle={:5.1}%  cpu_idle={:5.1}%",
                r.eviction, r.makespan, r.gpu_idle_pct, r.cpu_idle_pct
            );
        }
        println!("(paper: GPU idle 29% -> 1%)");
        println!();
    }
    if want("fig5") {
        println!("== Fig. 5: dense kernels, MultiPrio vs Dmdas ==");
        let scale = if full {
            fig5::Scale::Full
        } else {
            fig5::Scale::Quick
        };
        let rows = fig5::run(scale, &["multiprio", "dmdas"]);
        for r in &rows {
            println!(
                "{:11} {:6} n={:6} tile={:5} {:10} {:8.1} GF/s",
                r.platform, r.kernel, r.n, r.tile, r.sched, r.gflops
            );
        }
        println!("-- MultiPrio gain over Dmdas --");
        for (p, k, n, g) in fig5::gains_vs_dmdas(&rows) {
            println!("{p:11} {k:6} n={n:6}  {g:+6.1}%");
        }
        println!();
    }
    if want("fig6") {
        println!("== Fig. 6: TBFMM time vs GPU streams ==");
        let scale = if full {
            fig6::Scale::Full
        } else {
            fig6::Scale::Quick
        };
        let rows = fig6::run(scale, &["multiprio", "dmdas", "heteroprio"], &[1, 2, 3, 4]);
        for r in &rows {
            println!(
                "{:11} streams={} {:10} {:8.4} s",
                r.platform, r.streams, r.sched, r.time_s
            );
        }
        println!();
    }
    if want("fig7") {
        println!("== Fig. 7: sparse matrices (published | generated tree) ==");
        for r in fig7::run(7) {
            println!(
                "{:14} rows={:8} cols={:7} nnz={:8} {:9.0} Gflop | fronts={:4} tree={:9.0} Gflop",
                r.name, r.rows, r.cols, r.nnz, r.gflops, r.fronts, r.tree_gflops
            );
        }
        println!();
    }
    if want("fig8") {
        println!("== Fig. 8: sparse QR, ratio vs Dmdas (higher is better) ==");
        let scale = if full {
            fig8::Scale::Full
        } else {
            fig8::Scale::Quick
        };
        let rows = fig8::run(scale, &["multiprio", "dmdas", "heteroprio"]);
        for r in &rows {
            println!(
                "{:11} {:14} {:10} {:8.3} s  ratio {:5.3}",
                r.platform, r.matrix, r.sched, r.time_s, r.ratio_vs_dmdas
            );
        }
        for (p, m) in fig8::mean_multiprio_ratio(&rows) {
            println!("mean multiprio ratio on {p}: {m:.3} (paper: 1.31 Intel / 1.12 AMD)");
        }
        println!();
    }
}

/// One fixed seeded quick run (potrf under MultiPrio), exported as a
/// Chrome `trace_event` timeline: task spans, transfer spans and — when
/// built with `--features obs` — the scheduler's decision instants from
/// the provenance ring. Deterministic, so CI can diff the artifact —
/// including under a fault plan, whose kills/retries/recomputes show up
/// as instant events on the timeline.
fn export_trace(path: &str, front: &str, faults: FaultPlan, retry: RetryPolicy) {
    use mp_apps::dense::{potrf, DenseConfig};
    use mp_sched::concurrent::{RelaxedConfig, RelaxedSeqScheduler};
    use mp_sim::{simulate, SimConfig};
    use mp_trace::chrome_trace_with;
    use multiprio::MultiPrioScheduler;

    let w = potrf(DenseConfig::new(8 * 480, 480));
    let model = mp_apps::dense_model();
    let platform = mp_platform::presets::simple(6, 2);
    let cfg = SimConfig::seeded(42).with_faults(faults).with_retry(retry);
    let mut sched = MultiPrioScheduler::with_defaults();
    let mut relaxed_sched = RelaxedSeqScheduler::new(
        platform.worker_count(),
        RelaxedConfig {
            queues_per_worker: 2,
            seed: 42,
            track_rank: true,
        },
    );
    let result = match front {
        "relaxed" => simulate(&w.graph, &platform, &model, &mut relaxed_sched, cfg),
        _ => simulate(&w.graph, &platform, &model, &mut sched, cfg),
    };
    if let Some(e) = &result.error {
        eprintln!("trace run failed: {e}");
        std::process::exit(1);
    }
    if let Some(rank) = relaxed_sched.rank_stats() {
        println!(
            "relaxed front-end rank error: mean {:.2}, max {} over {} pops",
            rank.mean(),
            rank.rank_max,
            rank.pops
        );
    }
    if result.stats.worker_failures > 0 || result.stats.tasks_retried > 0 {
        println!(
            "faults: {} worker(s) failed, {} retried, {} recomputed, {} replica(s) promoted",
            result.stats.worker_failures,
            result.stats.tasks_retried,
            result.stats.tasks_recomputed,
            result.stats.replicas_promoted,
        );
    }
    let decisions = sched.provenance().decisions();
    match chrome_trace_with(&result.trace, &decisions, &[]) {
        Ok(json) => {
            std::fs::write(path, json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!(
                "wrote {path}: {} task spans, {} transfers, {} decisions \
                 (makespan {:.1} us; counters: {})",
                result.trace.tasks.len(),
                result.trace.transfers.len(),
                decisions.len(),
                result.makespan,
                result.counters.render(),
            );
            if decisions.is_empty() {
                println!("(rebuild with --features obs for scheduler decision instants)");
            }
        }
        Err(e) => {
            eprintln!("trace export failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Result-cache demonstration (DESIGN.md §12): a seeded potrf run cold
/// into a fresh content-addressed cache, then `warm_runs` warm replays
/// (printing hit-rate and warm/cold wall speedup), then — with
/// `mutate_frac > 0` — a mutated resubmission showing incremental
/// re-execution of just the dirty cone. With `cache_dir` the cache is
/// backed by the crash-safe segment log (DESIGN.md §14): records replay
/// on open (loaded/skipped counts printed, so the first run starts warm
/// across a process restart) and every insert streams back to disk;
/// `crash_after` kills the log writer mid-stream to stage a torn write
/// for the next invocation to recover from.
fn cache_demo(
    full: bool,
    warm_runs: usize,
    mutate_frac: f64,
    cache_dir: Option<String>,
    crash_after: Option<u64>,
) {
    use mp_apps::dense::{potrf, DenseConfig};
    use mp_cache::{changed_tasks, resubmit_with_mutation};
    use mp_sim::{simulate_cached, PersistConfig, PersistFaultPlan, ResultCache, SimConfig};
    use multiprio::MultiPrioScheduler;
    use std::time::Instant;

    let nt = if full { 48 } else { 16 };
    let w = potrf(DenseConfig::new(nt * 480, 480));
    let model = mp_apps::dense_model();
    let platform = mp_platform::presets::simple(6, 2);
    let n = w.graph.task_count();
    let cache = match &cache_dir {
        Some(dir) => {
            let mut fault = PersistFaultPlan::default();
            if let Some(bytes) = crash_after {
                fault = fault.kill_after_bytes(bytes);
            }
            let cfg = PersistConfig {
                fault,
                ..PersistConfig::default()
            };
            let (cache, load) = ResultCache::open_with(dir, None, cfg).unwrap_or_else(|e| {
                eprintln!("--cache-dir {dir}: {e}");
                std::process::exit(1);
            });
            println!(
                "persist: {dir}: loaded {} record(s), skipped {} of {} scanned \
                 across {} segment(s)",
                load.loaded, load.rejected, load.records_scanned, load.segments
            );
            cache
        }
        None => ResultCache::new(),
    };
    let run = |g: &mp_dag::TaskGraph| {
        let mut sched = MultiPrioScheduler::with_defaults();
        let t0 = Instant::now();
        let r = simulate_cached(
            g,
            &platform,
            &model,
            &mut sched,
            SimConfig::seeded(42),
            Some(&cache),
        );
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        if let Some(e) = &r.error {
            eprintln!("cached run failed: {e}");
            std::process::exit(1);
        }
        (r, wall_ms)
    };

    println!("== result cache: potrf {}x{} ({n} tasks) ==", nt * 480, 480);
    let (cold, cold_ms) = run(&w.graph);
    println!(
        "cold:    {} hits ({:5.1}%) / {} misses, makespan {:9.1} us, wall {cold_ms:8.2} ms",
        cold.stats.cache_hits,
        cold.stats.cache_hits as f64 / n as f64 * 100.0,
        cold.stats.cache_misses,
        cold.makespan
    );
    for i in 1..=warm_runs {
        let (warm, warm_ms) = run(&w.graph);
        println!(
            "warm #{i}: {} hits ({:5.1}%), makespan {:9.1} us, wall {warm_ms:8.2} ms \
             ({:.1}x vs cold)",
            warm.stats.cache_hits,
            warm.stats.cache_hits as f64 / n as f64 * 100.0,
            warm.makespan,
            cold_ms / warm_ms.max(1e-9),
        );
    }
    if mutate_frac > 0.0 {
        let edited = resubmit_with_mutation(&w.graph, mutate_frac, 42);
        let cone = changed_tasks(&w.graph, &edited);
        let (inc, inc_ms) = run(&edited);
        println!(
            "mutated: {:.1}% of tasks edited -> dirty cone {} of {n}; re-executed {}, \
             {} hits ({:5.1}%), wall {inc_ms:8.2} ms",
            mutate_frac * 100.0,
            cone.len(),
            inc.trace.tasks.len(),
            inc.stats.cache_hits,
            inc.stats.cache_hits as f64 / n as f64 * 100.0,
        );
    }
    if cache_dir.is_some() {
        let ps = cache.persist_stats();
        match crash_after {
            Some(bytes) => {
                if let Err(e) = cache.crash() {
                    eprintln!("crash injection failed: {e}");
                    std::process::exit(1);
                }
                println!(
                    "persist: writer killed after {bytes} record-stream byte(s); \
                     {} record(s) committed before death (torn tail truncated)",
                    ps.writes
                );
            }
            None => println!("persist: {} record(s) written this run", ps.writes),
        }
    }
}

/// Open-loop serving demo (DESIGN.md §13): `--tenants N` clients with
/// graded fair-share weights `N..1` stream fork-join sub-DAGs at the
/// given arrival process through the bounded-admission serving engine,
/// entirely in virtual time. Reports throughput (decisions/sec),
/// scheduling latency (p50/p99: ready → popped), the admission ledger
/// and the per-tenant fairness breakdown.
fn serve_demo(
    arrivals: Option<String>,
    tenants: usize,
    workers: usize,
    submissions: usize,
    policy: &str,
) {
    use mp_bench::make_scheduler;
    use mp_perfmodel::{TableModel, TimeFn};
    use mp_platform::types::ArchClass;
    use mp_serve::{serve_sim, ArrivalProcess, ServeConfig, TenantSpec};

    /// Per-task virtual service time (µs) under the demo model.
    const TASK_US: f64 = 25.0;
    let arrivals = match arrivals {
        Some(s) => ArrivalProcess::parse(&s).unwrap_or_else(|e| {
            eprintln!("--arrivals: {e}");
            std::process::exit(2);
        }),
        // Default: ~80% offered utilization in whole sub-DAGs.
        None => ArrivalProcess::Poisson {
            rate_per_sec: (workers as f64 * 1e6 / TASK_US / 6.0 * 0.8).round(),
        },
    };
    let specs: Vec<TenantSpec> = (0..tenants)
        .map(|i| TenantSpec::new(format!("t{i}"), (tenants - i) as f64))
        .collect();
    let cfg = ServeConfig::new(specs, arrivals.clone(), submissions);
    let platform = mp_platform::presets::homogeneous(workers);
    let model = TableModel::builder()
        .set("SRV", ArchClass::Cpu, TimeFn::Const(TASK_US))
        .build();
    let mut sched = make_scheduler(policy);
    let report = serve_sim(&platform, &model, sched.as_mut(), &cfg);

    println!(
        "== serving mode: {policy}, {workers} workers, {}, {submissions} sub-DAG submissions ==",
        arrivals.label()
    );
    println!(
        "throughput {:.0} decisions/s  latency p50 {} µs  p99 {} µs  makespan {:.0} µs",
        report.decisions_per_sec(),
        report.p50_us(),
        report.p99_us(),
        report.makespan_us
    );
    println!(
        "admitted {} sub-DAGs ({} tasks), rejected {} with backpressure",
        report.subdags_admitted, report.tasks_admitted, report.subdags_rejected
    );
    println!("tenant     weight   adm    rej   mean µs   max µs");
    for t in &report.tenants {
        println!(
            "{:10} {:6.1} {:6} {:6} {:9.1} {:8}",
            t.name,
            t.weight,
            t.subdags_admitted,
            t.subdags_rejected,
            t.latency.mean_us(),
            t.latency.max_us
        );
    }
    if !report.is_complete() {
        eprintln!(
            "serve run incomplete: {}/{} tasks, error {:?}",
            report.tasks_completed, report.tasks_admitted, report.error
        );
        std::process::exit(1);
    }
}

/// Cache-backed warm-serving demo (DESIGN.md §13): the same seeded
/// sub-DAG stream served cold (no cache) and warm (fresh result cache,
/// so every resubmission over a tenant's slot pool after the first hits
/// at release and never enters the scheduler). Runs at 20x overload
/// with unbounded admission so the warm run is arrival-limited and the
/// served-tasks/sec speedup is visible; `mutate_frac` perturbs a
/// fraction of arrivals so only their dirty cones re-execute.
fn serve_cache_demo(
    arrivals: Option<String>,
    tenants: usize,
    workers: usize,
    submissions: usize,
    policy: &str,
    mutate_frac: f64,
) {
    use mp_bench::make_scheduler;
    use mp_perfmodel::{TableModel, TimeFn};
    use mp_platform::types::ArchClass;
    use mp_serve::{serve_sim_cached, ArrivalProcess, ServeConfig, TenantSpec};
    use mp_sim::ResultCache;

    /// Per-task virtual service time (µs) under the demo model.
    const TASK_US: f64 = 25.0;
    /// Root + width mids + join under the default [`SubDagShape`].
    const TASKS_PER_SUBDAG: f64 = 6.0;
    let arrivals = match arrivals {
        Some(s) => ArrivalProcess::parse(&s).unwrap_or_else(|e| {
            eprintln!("--arrivals: {e}");
            std::process::exit(2);
        }),
        // 20x overload: the cold run is service-limited, the warm run
        // collapses to the arrival span.
        None => ArrivalProcess::Poisson {
            rate_per_sec: (workers as f64 * 1e6 / TASK_US / TASKS_PER_SUBDAG * 20.0).round(),
        },
    };
    let specs: Vec<TenantSpec> = (0..tenants)
        .map(|i| TenantSpec::new(format!("t{i}"), (tenants - i) as f64))
        .collect();
    let mut cfg = ServeConfig::new(specs, arrivals.clone(), submissions);
    cfg.admission.max_in_flight = 1 << 30;
    cfg.subdag.mutation_frac = mutate_frac;
    let platform = mp_platform::presets::homogeneous(workers);
    let model = TableModel::builder()
        .set("SRV", ArchClass::Cpu, TimeFn::Const(TASK_US))
        .build();
    let served_per_sec = |r: &mp_serve::ServeReport| {
        if r.makespan_us <= 0.0 {
            return 0.0;
        }
        r.tasks_completed as f64 / (r.makespan_us / 1e6)
    };

    let mut sched = make_scheduler(policy);
    let cold = serve_sim_cached(&platform, &model, sched.as_mut(), &cfg, None);
    let cache = ResultCache::new();
    let mut sched = make_scheduler(policy);
    let warm = serve_sim_cached(&platform, &model, sched.as_mut(), &cfg, Some(&cache));
    for (label, r) in [("cold", &cold), ("warm", &warm)] {
        if !r.is_complete() {
            eprintln!(
                "{label} serve run incomplete: {}/{} tasks, error {:?}",
                r.tasks_completed, r.tasks_admitted, r.error
            );
            std::process::exit(1);
        }
    }

    println!(
        "== warm serving: {policy}, {workers} workers, {}, {submissions} sub-DAG submissions, \
         mutate {mutate_frac:.2} ==",
        arrivals.label()
    );
    println!(
        "cold: {:10.0} served tasks/s  {:8} decisions  makespan {:10.0} µs  hash {:#018x}",
        served_per_sec(&cold),
        cold.decisions,
        cold.makespan_us,
        cold.schedule_hash
    );
    println!(
        "warm: {:10.0} served tasks/s  {:8} decisions  makespan {:10.0} µs",
        served_per_sec(&warm),
        warm.decisions,
        warm.makespan_us
    );
    let total = warm.cache_hits + warm.cache_misses;
    println!(
        "warm cache: {} hits / {} misses ({:.1}% hit-rate)  speedup {:.1}x served/s",
        warm.cache_hits,
        warm.cache_misses,
        warm.cache_hits as f64 / (total.max(1)) as f64 * 100.0,
        served_per_sec(&warm) / served_per_sec(&cold).max(1e-9),
    );
    println!("tenant     weight   adm   hits  completed");
    for t in &warm.tenants {
        println!(
            "{:10} {:6.1} {:6} {:6} {:10}",
            t.name, t.weight, t.subdags_admitted, t.cache_hits, t.tasks_completed
        );
    }
}

/// Deep-dive one sparse matrix: makespan, idle and transfer stats per
/// scheduler (diagnostic aid, not a paper figure).
fn probe(name: &str) {
    use mp_apps::sparseqr::{matrix, sparse_qr, SparseQrConfig};
    use mp_bench::harness::run_noisy;
    use mp_trace::TransferKind;
    let meta = matrix(name).unwrap_or_else(|| panic!("unknown matrix {name}"));
    let w = sparse_qr(meta, SparseQrConfig::default());
    let st = w.graph.stats();
    println!(
        "{name}: {} tasks, {} edges, {:.0} Gflop, {:.2} GB of handles",
        st.tasks,
        st.edges,
        w.total_flops / 1e9,
        st.total_bytes as f64 / 1e9
    );
    let model = mp_apps::sparseqr_model();
    for (pname, platform) in [
        ("Intel-V100", mp_platform::presets::intel_v100_streams(4)),
        ("AMD-A100", mp_platform::presets::amd_a100_streams(4)),
    ] {
        for sched in ["multiprio", "dmdas", "heteroprio"] {
            let r = run_noisy(&w.graph, &platform, &model, sched, 8, fig8::SPARSE_NOISE_CV);
            let gpu_idle = r.arch_idle_pct(&platform, "gpu").unwrap_or(0.0);
            let cpu_idle = r.arch_idle_pct(&platform, "cpu-core").unwrap_or(0.0);
            println!(
                "{pname:11} {sched:10} {:9.3} s  gpu_idle={gpu_idle:5.1}% cpu_idle={cpu_idle:5.1}% demand={:6.0}MB prefetch={:6.0}MB wb={:5.0}MB empty_pops={}",
                r.makespan / 1e6,
                r.transferred(TransferKind::Demand) as f64 / 1e6,
                r.transferred(TransferKind::Prefetch) as f64 / 1e6,
                r.transferred(TransferKind::WriteBack) as f64 / 1e6,
                r.stats.empty_pops,
            );
        }
    }
}
