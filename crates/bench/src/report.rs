//! Markdown comparison reports: run a set of schedulers over a workload
//! and render makespans, relative performance, utilization and transfer
//! volumes as one table. Used by the `compare` binary and available as a
//! library (e.g. for CI dashboards of scheduler changes).

use mp_dag::TaskGraph;
use mp_perfmodel::PerfModel;
use mp_platform::types::{ArchClass, Platform};
use mp_trace::TransferKind;

use crate::harness::run_noisy;

/// One scheduler's measurements on one workload.
#[derive(Clone, Debug)]
pub struct ReportRow {
    /// Scheduler name.
    pub sched: String,
    /// Makespan in µs.
    pub makespan: f64,
    /// Speed relative to the first (reference) scheduler (1.0 = equal,
    /// higher = faster).
    pub rel: f64,
    /// Mean CPU-class idle percentage.
    pub cpu_idle_pct: f64,
    /// Mean GPU-class idle percentage (0 when the platform has none).
    pub gpu_idle_pct: f64,
    /// Total bytes moved (demand + prefetch + write-back).
    pub bytes_moved: u64,
}

/// Run `schedulers` over the workload and collect rows; the first name is
/// the reference for the `rel` column.
pub fn compare(
    graph: &TaskGraph,
    platform: &Platform,
    model: &dyn PerfModel,
    schedulers: &[&str],
    seed: u64,
    noise_cv: f64,
) -> Vec<ReportRow> {
    let mut rows = Vec::with_capacity(schedulers.len());
    let mut reference = f64::NAN;
    for (i, sched) in schedulers.iter().enumerate() {
        let r = run_noisy(graph, platform, model, sched, seed, noise_cv);
        if i == 0 {
            reference = r.makespan;
        }
        let idle_of = |class: ArchClass| -> f64 {
            let archs: Vec<_> = platform
                .archs()
                .iter()
                .filter(|a| a.class == class)
                .collect();
            if archs.is_empty() {
                return 0.0;
            }
            archs
                .iter()
                .map(|a| mp_trace::analysis::arch_idle_pct(&r.trace, platform, a.id))
                .sum::<f64>()
                / archs.len() as f64
        };
        rows.push(ReportRow {
            sched: sched.to_string(),
            makespan: r.makespan,
            rel: reference / r.makespan,
            cpu_idle_pct: idle_of(ArchClass::Cpu),
            gpu_idle_pct: idle_of(ArchClass::Gpu),
            bytes_moved: r.transferred(TransferKind::Demand)
                + r.transferred(TransferKind::Prefetch)
                + r.transferred(TransferKind::WriteBack),
        });
    }
    rows
}

/// Render rows as a GitHub-flavored markdown table.
pub fn to_markdown(title: &str, rows: &[ReportRow]) -> String {
    let mut out = format!(
        "### {title}\n\n| scheduler | makespan (ms) | rel. speed | cpu idle | gpu idle | moved (MB) |\n|---|---:|---:|---:|---:|---:|\n"
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.2} | {:.3} | {:.1}% | {:.1}% | {:.0} |\n",
            r.sched,
            r.makespan / 1e3,
            r.rel,
            r.cpu_idle_pct,
            r.gpu_idle_pct,
            r.bytes_moved as f64 / 1e6,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_apps::random::{random_dag, random_model, RandomDagConfig};
    use mp_platform::presets::simple;

    #[test]
    fn rows_and_markdown() {
        let g = random_dag(RandomDagConfig {
            layers: 4,
            width: 6,
            ..Default::default()
        });
        let m = random_model();
        let p = simple(2, 1);
        let rows = compare(&g, &p, &m, &["dmdas", "multiprio", "fifo"], 1, 0.0);
        assert_eq!(rows.len(), 3);
        assert!((rows[0].rel - 1.0).abs() < 1e-12, "reference is 1.0");
        for r in &rows {
            assert!(r.makespan > 0.0);
            assert!((0.0..=100.0).contains(&r.cpu_idle_pct));
        }
        let md = to_markdown("test", &rows);
        assert!(md.starts_with("### test"));
        assert_eq!(md.lines().count(), 3 + 3 + 1, "header + separator + 3 rows");
        assert!(md.contains("| multiprio |"));
    }

    #[test]
    fn cpu_only_platform_reports_zero_gpu_idle() {
        let g = random_dag(RandomDagConfig {
            layers: 2,
            width: 4,
            gpu_fraction: 0.0,
            ..Default::default()
        });
        let m = random_model();
        let p = mp_platform::presets::homogeneous(2);
        let rows = compare(&g, &p, &m, &["fifo"], 1, 0.0);
        assert_eq!(rows[0].gpu_idle_pct, 0.0);
    }
}
