//! Table II bench: cost of the gain heuristic (observe + evaluate), the
//! per-push hot path of MultiPrio. Also prints the regenerated table once
//! so `cargo bench` output carries the paper comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use mp_platform::types::ArchId;
use multiprio::GainTracker;

fn bench(c: &mut Criterion) {
    let t = mp_bench::figures::table2::run();
    println!("[table2] hd = {:?} (paper: (19, 19))", t.hd);
    println!(
        "[table2] gain(a1) = {:?} (paper: [1.000, 0.631, 0.236])",
        t.gain_a1
    );
    println!(
        "[table2] gain(a2) = {:?} (paper: [0.000, 0.368, 0.763])",
        t.gain_a2
    );

    let tasks: Vec<Vec<(ArchId, f64)>> = (0..1000)
        .map(|i| {
            let d1 = 1.0 + (i % 97) as f64;
            let d2 = 1.0 + ((i * 31) % 89) as f64;
            let mut v = vec![(ArchId(0), d1), (ArchId(1), d2)];
            v.sort_by(|a, b| a.1.total_cmp(&b.1));
            v
        })
        .collect();

    c.bench_function("gain_observe_and_eval_1000_tasks", |b| {
        b.iter(|| {
            let mut g = GainTracker::new();
            let mut acc = 0.0;
            for t in &tasks {
                g.observe(t);
                acc += g.gain(t, ArchId(0)) + g.gain(t, ArchId(1));
            }
            std::hint::black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
