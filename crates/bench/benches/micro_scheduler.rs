//! Microbenchmarks of the scheduler building blocks: the removable heap,
//! MultiPrio push/pop throughput, and raw simulator event throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use mp_apps::random::{random_dag, random_model, RandomDagConfig};
use mp_bench::{make_scheduler, run_once};
use mp_dag::TaskId;
use mp_platform::presets::simple;
use multiprio::{RemovableMaxHeap, Score};

fn bench_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("heap");
    group.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut h = RemovableMaxHeap::new();
            for i in 0..10_000u32 {
                let g = ((i * 2654435761u32) >> 8) as f64 / (1u32 << 24) as f64;
                h.push(TaskId(i), Score::new(g, 0.0));
            }
            let mut acc = 0u32;
            while let Some((t, _)) = h.pop() {
                acc = acc.wrapping_add(t.0);
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("top_k_of_10k", |b| {
        let mut h = RemovableMaxHeap::new();
        for i in 0..10_000u32 {
            let g = ((i * 2654435761u32) >> 8) as f64 / (1u32 << 24) as f64;
            h.push(TaskId(i), Score::new(g, 0.0));
        }
        b.iter(|| std::hint::black_box(h.top_k(10)))
    });
    group.bench_function("remove_middle_10k", |b| {
        b.iter_batched(
            || {
                let mut h = RemovableMaxHeap::new();
                for i in 0..10_000u32 {
                    let g = ((i * 2654435761u32) >> 8) as f64 / (1u32 << 24) as f64;
                    h.push(TaskId(i), Score::new(g, 0.0));
                }
                h
            },
            |mut h| {
                for i in (0..10_000u32).step_by(7) {
                    h.remove(TaskId(i));
                }
                std::hint::black_box(h.len())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_sim_throughput(c: &mut Criterion) {
    let g = random_dag(RandomDagConfig {
        layers: 40,
        width: 25,
        ..Default::default()
    });
    let m = random_model();
    let p = simple(6, 2);
    let mut group = c.benchmark_group("sim_throughput_1000_tasks");
    group.throughput(criterion::Throughput::Elements(g.task_count() as u64));
    for sched in ["fifo", "dmdas", "heteroprio", "multiprio"] {
        group.bench_function(sched, |b| {
            b.iter(|| std::hint::black_box(run_once(&g, &p, &m, sched, 1).makespan))
        });
    }
    group.finish();
}

fn bench_scheduler_ops(c: &mut Criterion) {
    // Push/pop overhead in isolation: schedule 1000 independent tasks.
    let g = random_dag(RandomDagConfig {
        layers: 1,
        width: 1000,
        gpu_fraction: 0.7,
        ..Default::default()
    });
    let m = random_model();
    let p = simple(6, 2);
    let mut group = c.benchmark_group("sched_1000_independent");
    for sched in ["multiprio", "dmdas", "heteroprio"] {
        group.bench_function(sched, |b| {
            b.iter(|| {
                let mut s = make_scheduler(sched);
                std::hint::black_box(
                    mp_sim::simulate(&g, &p, &m, s.as_mut(), mp_sim::SimConfig::seeded(1)).makespan,
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_heap, bench_sim_throughput, bench_scheduler_ops
}
criterion_main!(benches);
