//! Concurrent front-end bench: sustained pops/sec of the three runtime
//! front-ends (global lock, sharded multi-queue, relaxed multi-queue)
//! driven directly from 16/32/64 worker threads on a steal-heavy
//! cheap-kernel workload, plus engine-level makespans, the relaxed
//! front-end's measured rank error against the exact-priority oracle,
//! and a differential-audit sweep (clean + fault plans) at every width.
//!
//! Emits `BENCH_concurrent.json` at the repository root (override with
//! `BENCH_CONCURRENT_OUT`). Exits non-zero when any differential audit
//! reports a mismatch or when an exact (non-relaxed) schedule diverges
//! between two identical sim-side runs — the CI `concurrency` job uses
//! the quick mode as a determinism + agreement gate.
//!
//! `BENCH_QUICK=1` restricts the sweep to 16/32 threads with one timing
//! sample.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use mp_apps::random::{random_dag, random_model, RandomDagConfig};
use mp_audit::{differential, schedule_hash, DiffConfig};
use mp_bench::{make_scheduler, make_scheduler_factory};
use mp_dag::graph::TaskGraph;
use mp_dag::ids::TaskId;
use mp_perfmodel::{Estimator, PerfModel, TableModel, TimeFn};
use mp_platform::presets::{homogeneous, simple};
use mp_platform::types::{ArchClass, WorkerId};
use mp_runtime::{FaultPlan, RelaxedConfig, RetryPolicy, Runtime, TaskBuilder};
use mp_sched::concurrent::{
    ConcurrentScheduler, GlobalLock, RelaxedMultiQueue, RelaxedSeqScheduler, ShardedAdapter,
};
use mp_sched::testutil::{MapLocator, ZeroLoad};
use mp_sched::{SchedView, Scheduler};
use mp_sim::{simulate, SimConfig};
use std::sync::Arc;

/// A dependency-free priority workload for driving a front-end raw:
/// `total` single-handle CPU tasks with user priorities cycling 0..64.
fn drive_graph(total: usize) -> (TaskGraph, Vec<TaskId>) {
    let mut g = TaskGraph::new();
    let step = g.register_type("STEP", true, false);
    let tasks: Vec<TaskId> = (0..total)
        .map(|i| {
            let d = g.add_data(64, format!("d{i}"));
            let t = g.add_task(
                step,
                vec![(d, mp_dag::access::AccessMode::ReadWrite)],
                1.0,
                format!("t{i}"),
            );
            g.set_user_priority(t, (i % 64) as i64);
            t
        })
        .collect();
    (g, tasks)
}

fn drive_model() -> TableModel {
    TableModel::builder()
        .set("STEP", ArchClass::Cpu, TimeFn::Const(5.0))
        .build()
}

/// Drive `front` from `workers` threads in the sustained-throughput
/// regime of the MultiQueue literature: the first half of `tasks` is
/// pre-filled, then every pop of task `t` pushes task `t + total/2`
/// with the popping worker as releaser, keeping the structure loaded
/// until the tail drains. Returns sustained pops/sec.
fn drive(
    front: &dyn ConcurrentScheduler,
    workers: usize,
    tasks: &[TaskId],
    graph: &TaskGraph,
    model: &TableModel,
) -> f64 {
    let platform = homogeneous(workers);
    let total = tasks.len();
    let prefill = total / 2;
    let loc = MapLocator::default();
    let make_view = || SchedView {
        est: Estimator::new(graph, &platform, model),
        loc: &loc,
        load: &ZeroLoad,
        now: 0.0,
    };
    {
        let view = make_view();
        for &t in &tasks[..prefill] {
            front.push(t, None, &view);
        }
    }
    let done = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (done, make_view) = (&done, &make_view);
            scope.spawn(move || {
                let view = make_view();
                let w = WorkerId(w as u32);
                while done.load(Ordering::Acquire) < total {
                    match front.pop(w, &view) {
                        Some(t) => {
                            let next = t.index() + prefill;
                            if next < total {
                                front.push(tasks[next], Some(w), &view);
                            }
                            done.fetch_add(1, Ordering::AcqRel);
                        }
                        None => std::thread::yield_now(),
                    }
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(done.load(Ordering::Acquire), total, "drive lost tasks");
    assert_eq!(front.pending(), 0, "drive left tasks behind");
    total as f64 / wall
}

struct DriveRow {
    workers: usize,
    front: &'static str,
    pops_per_sec: f64,
}

/// A named constructor for a front-end under drive.
type FrontFactory = Box<dyn Fn() -> Box<dyn ConcurrentScheduler>>;

struct EngineRow {
    workers: usize,
    front: String,
    wall_ms: f64,
    makespan_us: f64,
    rank_mean: Option<f64>,
    rank_max: Option<u64>,
}

struct AuditRow {
    workers: usize,
    plan: &'static str,
    clean: bool,
    mismatches: usize,
    sim_rank_mean: f64,
    runtime_rank_mean: f64,
    runtime_rank_max: u64,
}

/// Cheap-kernel DAG through the real engine: `width` chains of `layers`
/// increments each, wide enough that every worker stays fed.
fn engine_run(workers: usize, layers: usize, width: usize, mode: &str, seed: u64) -> EngineRow {
    let model: Arc<dyn PerfModel> = Arc::new(drive_model());
    let mut rt = Runtime::new(homogeneous(workers), model);
    let bufs: Vec<_> = (0..width)
        .map(|i| rt.register(vec![0.0f64; 8], &format!("b{i}")))
        .collect();
    for l in 0..layers {
        for (i, &b) in bufs.iter().enumerate() {
            rt.submit(
                TaskBuilder::new("STEP")
                    .access(b, mp_dag::access::AccessMode::ReadWrite)
                    .cpu(|ctx| {
                        for v in ctx.w(0) {
                            *v += 1.0;
                        }
                    })
                    .flops(8.0)
                    .priority(((l * width + i) % 64) as i64),
            );
        }
    }
    let t0 = Instant::now();
    let report = match mode {
        "global-lock" => rt.run(make_scheduler("prio")),
        "sharded" => rt.run_sharded(workers, &|| make_scheduler("prio")),
        "relaxed-mq" => rt.run_relaxed(RelaxedConfig {
            queues_per_worker: 2,
            seed,
            track_rank: true,
        }),
        other => panic!("unknown mode {other}"),
    }
    .expect("engine run failed");
    let wall = t0.elapsed();
    assert!(report.error.is_none(), "{mode}: {:?}", report.error);
    EngineRow {
        workers,
        front: report.scheduler.clone(),
        wall_ms: wall.as_secs_f64() * 1e3,
        makespan_us: report.makespan_us,
        rank_mean: report.rank.as_ref().map(|r| r.mean()),
        rank_max: report.rank.as_ref().map(|r| r.rank_max),
    }
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let samples = if quick { 1 } else { 3 };
    let widths: &[usize] = if quick { &[16, 32] } else { &[16, 32, 64] };

    // ---- Raw front-end drive: sustained pops/sec ----
    let mut drives: Vec<DriveRow> = Vec::new();
    let mut relaxed_rank: Vec<(usize, f64, u64)> = Vec::new();
    for &w in widths {
        let total = w * if quick { 512 } else { 2048 };
        let (graph, tasks) = drive_graph(total);
        let model = drive_model();
        eprintln!(
            "== drive {w} threads, {total} tasks ({} pre-filled)",
            total / 2
        );
        let fronts: Vec<(&'static str, FrontFactory)> = vec![
            (
                "global-lock",
                Box::new(|| Box::new(GlobalLock::new(make_scheduler("prio")))),
            ),
            (
                "sharded-prio",
                Box::new(move || Box::new(ShardedAdapter::new(w, &|| make_scheduler("prio")))),
            ),
            (
                // The paper's scheduler through the sharded front-end —
                // the path `run_sharded` actually serves. Its per-shard
                // policies replay the sequenced feedback log, which is
                // the serialization the relaxed front-end deletes.
                "sharded-multiprio",
                Box::new(move || {
                    Box::new(ShardedAdapter::new(
                        w,
                        &*make_scheduler_factory("multiprio"),
                    ))
                }),
            ),
            (
                "relaxed-mq",
                Box::new(move || {
                    Box::new(RelaxedMultiQueue::new(
                        w,
                        RelaxedConfig {
                            queues_per_worker: 2,
                            seed: 0x5EED,
                            track_rank: false,
                        },
                    ))
                }),
            ),
        ];
        for (name, make) in &fronts {
            let mut best = 0.0f64;
            for _ in 0..samples {
                let front = make();
                let rate = drive(front.as_ref(), w, &tasks, &graph, &model);
                best = best.max(rate);
            }
            eprintln!("   {name:12} {best:>12.0} pops/sec");
            drives.push(DriveRow {
                workers: w,
                front: name,
                pops_per_sec: best,
            });
        }
        // Rank error of the relaxed drain, measured untimed (the exact
        // mirror serializes every push/pop, so it never shares a run
        // with the throughput numbers).
        let front = RelaxedMultiQueue::new(
            w,
            RelaxedConfig {
                queues_per_worker: 2,
                seed: 0x5EED,
                track_rank: true,
            },
        );
        drive(&front, w, &tasks, &graph, &model);
        let stats = front.rank_stats().expect("rank tracking was on");
        eprintln!(
            "   relaxed rank error: mean {:.2}, max {}",
            stats.mean(),
            stats.rank_max
        );
        relaxed_rank.push((w, stats.mean(), stats.rank_max));
    }
    let speedup_32 = {
        let rate = |front: &str| {
            drives
                .iter()
                .find(|d| d.workers == 32 && d.front == front)
                .map(|d| d.pops_per_sec)
        };
        match (rate("relaxed-mq"), rate("sharded-multiprio")) {
            (Some(r), Some(s)) if s > 0.0 => Some(r / s),
            _ => None,
        }
    };
    if let Some(s) = speedup_32 {
        eprintln!("== relaxed-mq vs sharded at 32 workers: {s:.2}x");
    }

    // ---- Engine-level makespan, all three front-ends ----
    let mut engines: Vec<EngineRow> = Vec::new();
    for &w in widths {
        let (layers, width) = if quick { (8, w) } else { (16, 2 * w) };
        for mode in ["global-lock", "sharded", "relaxed-mq"] {
            let row = engine_run(w, layers, width, mode, 7);
            eprintln!(
                "   engine {w:>2}w {mode:12} {:>8.1} ms wall, makespan {:.0} µs{}",
                row.wall_ms,
                row.makespan_us,
                match (row.rank_mean, row.rank_max) {
                    (Some(m), Some(x)) => format!(", rank mean {m:.2} max {x}"),
                    _ => String::new(),
                }
            );
            engines.push(row);
        }
    }

    // ---- Differential audit sweep: relaxed front-end vs its exact
    // sim twin, clean and under fault plans ----
    let mut audits: Vec<AuditRow> = Vec::new();
    let mut unclean = false;
    for &w in widths {
        // Differential runs spawn real threads per worker: keep the
        // platform at the sweep width but the DAG modest.
        let platform = simple(w - 1, 1);
        let g = random_dag(RandomDagConfig {
            layers: 6,
            width: 8,
            seed: w as u64,
            ..Default::default()
        });
        let model: Arc<dyn PerfModel> = Arc::new(random_model());
        let noop: &dyn Fn() -> Box<dyn Scheduler> = &|| make_scheduler("fifo");
        for (plan_name, faults, retry) in [
            ("clean", None, RetryPolicy::default()),
            (
                "kill",
                Some(FaultPlan::default().kill_worker(0, 1)),
                RetryPolicy::new(4, 0.0),
            ),
            (
                "transient",
                Some(FaultPlan {
                    seed: 31,
                    transient_fail_prob: 0.2,
                    ..FaultPlan::default()
                }),
                RetryPolicy::new(16, 2.0),
            ),
        ] {
            let cfg = DiffConfig {
                sim_cfg: SimConfig::seeded(w as u64),
                faults,
                retry,
                relaxed: Some(RelaxedConfig {
                    queues_per_worker: 2,
                    seed: w as u64,
                    track_rank: true,
                }),
                ..DiffConfig::default()
            };
            let report = differential(&g, &platform, &model, noop, &cfg);
            let clean = report.is_clean();
            if !clean {
                eprintln!(
                    "!! AUDIT MISMATCH at {w} workers ({plan_name}): {}",
                    report.mismatches[0]
                );
                unclean = true;
            }
            let srm = report.sim_rank.as_ref().map(|r| r.mean()).unwrap_or(0.0);
            let rrm = report
                .runtime_rank
                .as_ref()
                .map(|r| r.mean())
                .unwrap_or(0.0);
            let rrx = report
                .runtime_rank
                .as_ref()
                .map(|r| r.rank_max)
                .unwrap_or(0);
            eprintln!(
                "   audit {w:>2}w {plan_name:9} clean={clean} sim rank mean {srm:.2}, runtime rank mean {rrm:.2} max {rrx}"
            );
            audits.push(AuditRow {
                workers: w,
                plan: plan_name,
                clean,
                mismatches: report.mismatches.len(),
                sim_rank_mean: srm,
                runtime_rank_mean: rrm,
                runtime_rank_max: rrx,
            });
        }
    }

    // ---- Determinism gate on the exact schedulers (CI smoke): two
    // identical sim-side runs must produce identical schedules, both
    // for the exact-priority policy and for the relaxed *sequential
    // twin* (the twin is deterministic by construction; only the
    // threaded relaxed front-end is allowed to reorder). ----
    let mut diverged = false;
    {
        let g = random_dag(RandomDagConfig {
            layers: 6,
            width: 8,
            seed: 99,
            ..Default::default()
        });
        let model = random_model();
        let platform = simple(3, 1);
        let run_exact = |name: &str| {
            let mut s = make_scheduler(name);
            let r = simulate(&g, &platform, &model, s.as_mut(), SimConfig::seeded(9));
            assert!(r.error.is_none(), "{name}: {:?}", r.error);
            schedule_hash(&r.trace)
        };
        for name in ["prio", "fifo", "multiprio"] {
            if run_exact(name) != run_exact(name) {
                eprintln!("!! SCHEDULE DIVERGENCE: {name}");
                diverged = true;
            }
        }
        let run_twin = || {
            let mut s = RelaxedSeqScheduler::new(
                platform.worker_count(),
                RelaxedConfig {
                    queues_per_worker: 2,
                    seed: 9,
                    track_rank: false,
                },
            );
            let r = simulate(&g, &platform, &model, &mut s, SimConfig::seeded(9));
            assert!(r.error.is_none(), "relaxed twin: {:?}", r.error);
            schedule_hash(&r.trace)
        };
        if run_twin() != run_twin() {
            eprintln!("!! SCHEDULE DIVERGENCE: relaxed sequential twin");
            diverged = true;
        }
    }

    // ---- JSON emission (hand-rolled: no serde_json in this tree) ----
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"bench-concurrent/v1\",");
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(j, "  \"samples\": {samples},");
    let _ = writeln!(j, "  \"frontend_drive\": [");
    for (i, d) in drives.iter().enumerate() {
        let comma = if i + 1 < drives.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"workers\": {}, \"front\": \"{}\", \"pops_per_sec\": {:.0}}}{comma}",
            d.workers, d.front, d.pops_per_sec
        );
    }
    let _ = writeln!(j, "  ],");
    match speedup_32 {
        Some(s) => {
            let _ = writeln!(j, "  \"relaxed_vs_sharded_32w\": {s:.2},");
        }
        None => {
            let _ = writeln!(j, "  \"relaxed_vs_sharded_32w\": null,");
        }
    }
    let _ = writeln!(j, "  \"relaxed_rank_error\": [");
    for (i, (w, mean, max)) in relaxed_rank.iter().enumerate() {
        let comma = if i + 1 < relaxed_rank.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"workers\": {w}, \"mean\": {mean:.3}, \"max\": {max}}}{comma}"
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"engine\": [");
    for (i, e) in engines.iter().enumerate() {
        let comma = if i + 1 < engines.len() { "," } else { "" };
        let rank = match (e.rank_mean, e.rank_max) {
            (Some(m), Some(x)) => format!("{{\"mean\": {m:.3}, \"max\": {x}}}"),
            _ => "null".to_string(),
        };
        let _ = writeln!(
            j,
            "    {{\"workers\": {}, \"front\": \"{}\", \"wall_ms\": {:.1}, \
             \"makespan_us\": {:.1}, \"rank_error\": {rank}}}{comma}",
            e.workers, e.front, e.wall_ms, e.makespan_us
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"differential\": [");
    for (i, a) in audits.iter().enumerate() {
        let comma = if i + 1 < audits.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"workers\": {}, \"plan\": \"{}\", \"clean\": {}, \"mismatches\": {}, \
             \"sim_rank_mean\": {:.3}, \"runtime_rank_mean\": {:.3}, \"runtime_rank_max\": {}}}{comma}",
            a.workers, a.plan, a.clean, a.mismatches, a.sim_rank_mean, a.runtime_rank_mean,
            a.runtime_rank_max
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"diverged\": {diverged}");
    let _ = writeln!(j, "}}");

    let out = std::env::var("BENCH_CONCURRENT_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_concurrent.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &j).expect("write BENCH_concurrent.json");
    eprintln!("wrote {out}");

    if unclean {
        eprintln!("FAIL: differential audit mismatch");
        std::process::exit(1);
    }
    if diverged {
        eprintln!("FAIL: schedule divergence on an exact scheduler");
        std::process::exit(1);
    }
}
