//! Scaling bench: per-decision scheduler cost and end-to-end simulator
//! throughput on large Cholesky and FMM DAGs (16k / 64k / 256k tasks).
//!
//! Emits a machine-readable `BENCH_scaling.json` at the repository root
//! (override with `BENCH_SCALING_OUT`) so successive PRs have a
//! perf-trajectory artifact, and **exits non-zero when a scheduler's
//! replayed schedule diverges between two identical runs** — the CI
//! `bench-smoke` job relies on that for a cheap determinism check.
//!
//! `BENCH_QUICK=1` restricts the sweep to the 16k-task workloads with one
//! timing sample — a smoke run for CI.
//!
//! The `multiprio-reference` scheduler is the retained pre-slab
//! implementation (hash-map state, eager heap removal); the
//! `decision_improvement` section reports the measured speedup of the
//! slab-backed `multiprio` over it on the largest Cholesky sweep.

use std::fmt::Write as _;
use std::time::Instant;

use mp_apps::dense::{potrf, DenseConfig};
use mp_apps::fmm::{fmm, Distribution, FmmConfig};
use mp_apps::{dense_model, fmm_model};
use mp_bench::replay::{replay, ReplayStats};
use mp_bench::{make_scheduler, SCHEDULER_NAMES};
use mp_dag::TaskGraph;
use mp_perfmodel::PerfModel;
use mp_platform::presets::simple;
use mp_sim::{simulate, SimConfig};

/// Schedulers timed in the scheduler-only replay (decision cost).
const REPLAY_SCHEDS: [&str; 6] = [
    "multiprio",
    "multiprio-reference",
    "dmdas",
    "heteroprio",
    "lws",
    "fifo",
];

/// Schedulers timed end-to-end through the simulator.
const SIM_SCHEDS: [&str; 3] = ["multiprio", "dmdas", "heteroprio"];

struct Workload {
    app: &'static str,
    label: String,
    graph: TaskGraph,
    model: Box<dyn PerfModel>,
}

fn cholesky(nt_side: usize) -> Workload {
    let tile = 64; // small tiles: DAG shape matters here, not flops
    let w = potrf(DenseConfig::new(nt_side * tile, tile));
    Workload {
        app: "cholesky",
        label: format!("nt={nt_side}"),
        graph: w.graph,
        model: Box::new(dense_model()),
    }
}

fn fmm_workload(particles: usize, tree_height: usize, group_size: usize) -> Workload {
    let w = fmm(FmmConfig {
        particles,
        tree_height,
        group_size,
        distribution: Distribution::Uniform,
        seed: 42,
    });
    Workload {
        app: "fmm",
        label: format!("h={tree_height},g={group_size}"),
        graph: w.graph,
        model: Box::new(fmm_model()),
    }
}

struct DecisionRow {
    app: &'static str,
    label: String,
    tasks: usize,
    sched: &'static str,
    ns_per_decision: f64,
    pops: usize,
    schedule_hash: u64,
}

struct SimRow {
    app: &'static str,
    label: String,
    tasks: usize,
    sched: &'static str,
    wall_ms: f64,
    makespan_us: f64,
}

fn best_replay(
    w: &Workload,
    platform: &mp_platform::types::Platform,
    sched: &str,
    samples: usize,
) -> (ReplayStats, bool) {
    let mut best: Option<ReplayStats> = None;
    let mut hash: Option<u64> = None;
    let mut diverged = false;
    // samples + 1 runs: every run doubles as a determinism probe.
    for _ in 0..samples + 1 {
        let mut s = make_scheduler(sched);
        let r = replay(&w.graph, platform, w.model.as_ref(), s.as_mut());
        match hash {
            None => hash = Some(r.schedule_hash),
            Some(h) => diverged |= h != r.schedule_hash,
        }
        if best.is_none() || r.wall < best.unwrap().wall {
            best = Some(r);
        }
    }
    (best.unwrap(), diverged)
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let samples = if quick { 1 } else { 3 };
    let platform = simple(6, 2);

    // ~16k / ~64k / ~256k tasks (nt³/6 + O(nt²) for tile Cholesky).
    let cholesky_sides: &[usize] = if quick { &[45] } else { &[45, 72, 114] };
    // ~16k / ~60k / ~258k tasks (probed empirically; counts depend on the
    // octree occupancy, not just the particle total).
    let fmm_cfgs: &[(usize, usize, usize)] = if quick {
        &[(200_000, 6, 20)]
    } else {
        &[(200_000, 6, 20), (500_000, 7, 38), (2_300_000, 8, 58)]
    };

    let mut workloads: Vec<Workload> = Vec::new();
    for &nt in cholesky_sides {
        workloads.push(cholesky(nt));
    }
    for &(p, h, g) in fmm_cfgs {
        workloads.push(fmm_workload(p, h, g));
    }

    let mut decisions: Vec<DecisionRow> = Vec::new();
    let mut sims: Vec<SimRow> = Vec::new();
    let mut diverged_any = false;

    for w in &workloads {
        let tasks = w.graph.task_count();
        eprintln!("== {} {} ({} tasks)", w.app, w.label, tasks);
        for sched in REPLAY_SCHEDS {
            if !SCHEDULER_NAMES.contains(&sched) {
                continue; // reference impl not present in this build
            }
            let (r, diverged) = best_replay(w, &platform, sched, samples);
            if diverged {
                eprintln!("!! SCHEDULE DIVERGENCE: {sched} on {} {}", w.app, w.label);
                diverged_any = true;
            }
            eprintln!(
                "   replay {sched:22} {:>9.1} ns/decision  ({} pops)",
                r.ns_per_decision(),
                r.pops
            );
            decisions.push(DecisionRow {
                app: w.app,
                label: w.label.clone(),
                tasks,
                sched,
                ns_per_decision: r.ns_per_decision(),
                pops: r.pops,
                schedule_hash: r.schedule_hash,
            });
        }
        // End-to-end simulation: one timed run (the simulator itself is
        // deterministic; determinism is asserted by tier-1 tests).
        for sched in SIM_SCHEDS {
            let mut s = make_scheduler(sched);
            let cfg = SimConfig {
                record_trace: false,
                validate: false,
                ..SimConfig::seeded(1)
            };
            let t0 = Instant::now();
            let res = simulate(&w.graph, &platform, w.model.as_ref(), s.as_mut(), cfg);
            let wall = t0.elapsed();
            eprintln!(
                "   sim    {sched:22} {:>9.1} ms wall, makespan {:.0} µs",
                wall.as_secs_f64() * 1e3,
                res.makespan
            );
            sims.push(SimRow {
                app: w.app,
                label: w.label.clone(),
                tasks,
                sched,
                wall_ms: wall.as_secs_f64() * 1e3,
                makespan_us: res.makespan,
            });
        }
    }

    // Improvement of slab multiprio over the retained reference on the
    // largest Cholesky sweep present in this run.
    let improvement = {
        let largest = decisions
            .iter()
            .filter(|d| d.app == "cholesky" && d.sched == "multiprio")
            .max_by_key(|d| d.tasks);
        let before = largest.and_then(|aft| {
            decisions
                .iter()
                .find(|d| {
                    d.app == aft.app && d.tasks == aft.tasks && d.sched == "multiprio-reference"
                })
                .map(|bef| (bef, aft))
        });
        before.map(|(bef, aft)| {
            (
                bef.tasks,
                bef.ns_per_decision,
                aft.ns_per_decision,
                bef.ns_per_decision / aft.ns_per_decision,
            )
        })
    };

    // ---- JSON emission (hand-rolled: no serde_json in this tree) ----
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"bench-scaling/v1\",");
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(j, "  \"samples\": {samples},");
    let _ = writeln!(j, "  \"decision_cost\": [");
    for (i, d) in decisions.iter().enumerate() {
        let comma = if i + 1 < decisions.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"app\": \"{}\", \"label\": \"{}\", \"tasks\": {}, \"sched\": \"{}\", \
             \"ns_per_decision\": {:.1}, \"pops\": {}, \"schedule_hash\": \"{:016x}\"}}{comma}",
            d.app, d.label, d.tasks, d.sched, d.ns_per_decision, d.pops, d.schedule_hash
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"sim\": [");
    for (i, s) in sims.iter().enumerate() {
        let comma = if i + 1 < sims.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"app\": \"{}\", \"label\": \"{}\", \"tasks\": {}, \"sched\": \"{}\", \
             \"wall_ms\": {:.1}, \"makespan_us\": {:.1}}}{comma}",
            s.app, s.label, s.tasks, s.sched, s.wall_ms, s.makespan_us
        );
    }
    let _ = writeln!(j, "  ],");
    match improvement {
        Some((tasks, before, after, ratio)) => {
            let _ = writeln!(
                j,
                "  \"decision_improvement\": {{\"sweep_tasks\": {tasks}, \
                 \"before_ns\": {before:.1}, \"after_ns\": {after:.1}, \"ratio\": {ratio:.2}}},"
            );
        }
        None => {
            let _ = writeln!(j, "  \"decision_improvement\": null,");
        }
    }
    let _ = writeln!(j, "  \"diverged\": {diverged_any}");
    let _ = writeln!(j, "}}");

    let out = std::env::var("BENCH_SCALING_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_scaling.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &j).expect("write BENCH_scaling.json");
    eprintln!("wrote {out}");

    if diverged_any {
        eprintln!("FAIL: schedule divergence detected");
        std::process::exit(1);
    }
}
