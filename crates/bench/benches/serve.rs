//! Serving-mode bench: sustained scheduling throughput and latency of
//! the open-loop multi-tenant streaming front-end (`mp_serve::serve_sim`)
//! in **virtual time** — decisions per second, p50/p99 scheduling
//! latency (ready → popped) — at 16/32/64 workers under Poisson and
//! bursty arrivals (quick mode drops the 64-worker point).
//!
//! Every configuration runs twice and the run is rejected unless the
//! two schedule hashes are bit-identical: the serving layer must be a
//! pure function of its config, with no wall clock anywhere. Every
//! number in the emitted JSON derives from virtual time, so
//! `BENCH_serve.json` itself is bit-deterministic across repeats.
//!
//! Emits `BENCH_serve.json` at the repository root (override with
//! `BENCH_SERVE_OUT`). Exits non-zero on a determinism violation, an
//! incomplete run (stall), or an admission ledger that does not balance.
//!
//! `BENCH_QUICK=1` shrinks the sweep to CI scale.

use std::fmt::Write as _;

use mp_bench::make_scheduler;
use mp_perfmodel::{PerfModel, TableModel, TimeFn};
use mp_platform::presets::homogeneous;
use mp_platform::types::ArchClass;
use mp_serve::{serve_sim, ArrivalProcess, ServeConfig, ServeReport, TenantSpec};

/// Per-task service time in virtual µs (every task of the fork-join).
const TASK_US: f64 = 25.0;
/// Tasks per submitted sub-DAG: root + width(4) + join.
const TASKS_PER_SUBDAG: f64 = 6.0;

fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("gold", 4.0),
        TenantSpec::new("silver", 2.0),
        TenantSpec::new("bronze", 1.0),
        TenantSpec::new("bronze2", 1.0),
    ]
}

fn run_once(workers: usize, arrivals: ArrivalProcess, submissions: usize) -> ServeReport {
    let platform = homogeneous(workers);
    let model = TableModel::builder()
        .set("SRV", ArchClass::Cpu, TimeFn::Const(TASK_US))
        .build();
    let model: &dyn PerfModel = &model;
    let mut sched = make_scheduler("prio");
    let cfg = ServeConfig::new(tenants(), arrivals, submissions);
    serve_sim(&platform, model, sched.as_mut(), &cfg)
}

struct Row {
    workers: usize,
    arrivals: String,
    submissions: usize,
    decisions: u64,
    decisions_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    subdags_admitted: u64,
    subdags_rejected: u64,
    makespan_us: f64,
    schedule_hash: u64,
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let mut failed = false;

    let worker_counts: &[usize] = if quick { &[16, 32] } else { &[16, 32, 64] };
    let submissions = if quick { 2_000 } else { 20_000 };
    let mut rows: Vec<Row> = Vec::new();

    eprintln!("== serving mode (prio policy, {TASK_US} µs tasks, open loop) ==");
    for &workers in worker_counts {
        // ~80% offered utilization: tasks/s capacity × 0.8, in sub-DAGs.
        let rate = (workers as f64 * 1e6 / TASK_US / TASKS_PER_SUBDAG * 0.8).round();
        let arrival_set = [
            ArrivalProcess::Poisson { rate_per_sec: rate },
            ArrivalProcess::Bursty {
                rate_per_sec: rate,
                burst: 16,
            },
        ];
        for arrivals in arrival_set {
            let a = run_once(workers, arrivals.clone(), submissions);
            let b = run_once(workers, arrivals.clone(), submissions);
            if a.schedule_hash != b.schedule_hash {
                eprintln!(
                    "!! {workers}w {}: schedule hash diverged across repeats \
                     ({:016x} vs {:016x})",
                    arrivals.label(),
                    a.schedule_hash,
                    b.schedule_hash
                );
                failed = true;
            }
            if !a.is_complete() {
                eprintln!(
                    "!! {workers}w {}: run incomplete ({}/{} tasks, error {:?})",
                    arrivals.label(),
                    a.tasks_completed,
                    a.tasks_admitted,
                    a.error
                );
                failed = true;
            }
            if a.subdags_admitted + a.subdags_rejected != submissions as u64 {
                eprintln!(
                    "!! {workers}w {}: admission ledger does not balance \
                     ({} + {} != {submissions})",
                    arrivals.label(),
                    a.subdags_admitted,
                    a.subdags_rejected
                );
                failed = true;
            }
            eprintln!(
                "   {workers:>2}w {:<18} {:>9.0} dec/s  p50 {:>5} µs  p99 {:>6} µs  \
                 adm {:>6}  rej {:>5}  makespan {:>9.0} µs",
                arrivals.label(),
                a.decisions_per_sec(),
                a.p50_us(),
                a.p99_us(),
                a.subdags_admitted,
                a.subdags_rejected,
                a.makespan_us
            );
            rows.push(Row {
                workers,
                arrivals: arrivals.label(),
                submissions,
                decisions: a.decisions,
                decisions_per_sec: a.decisions_per_sec(),
                p50_us: a.p50_us(),
                p99_us: a.p99_us(),
                subdags_admitted: a.subdags_admitted,
                subdags_rejected: a.subdags_rejected,
                makespan_us: a.makespan_us,
                schedule_hash: a.schedule_hash,
            });
        }
    }

    // ---- JSON emission (hand-rolled: no serde_json in this tree).
    // Virtual-time quantities only — the file is repeat-deterministic.
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"bench-serve/v1\",");
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(j, "  \"policy\": \"prio\",");
    let _ = writeln!(j, "  \"task_us\": {TASK_US},");
    let _ = writeln!(j, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"workers\": {}, \"arrivals\": \"{}\", \"submissions\": {}, \
             \"decisions\": {}, \"decisions_per_sec\": {:.1}, \"p50_us\": {}, \
             \"p99_us\": {}, \"subdags_admitted\": {}, \"subdags_rejected\": {}, \
             \"makespan_us\": {:.3}, \"schedule_hash\": \"{:016x}\"}}{comma}",
            r.workers,
            r.arrivals,
            r.submissions,
            r.decisions,
            r.decisions_per_sec,
            r.p50_us,
            r.p99_us,
            r.subdags_admitted,
            r.subdags_rejected,
            r.makespan_us,
            r.schedule_hash
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"failed\": {failed}");
    let _ = writeln!(j, "}}");

    let out = std::env::var("BENCH_SERVE_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &j).expect("write BENCH_serve.json");
    eprintln!("wrote {out}");

    if failed {
        eprintln!("FAIL: serve bench gate");
        std::process::exit(1);
    }
}
