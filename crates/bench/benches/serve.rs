//! Serving-mode bench: sustained scheduling throughput and latency of
//! the open-loop multi-tenant streaming front-end (`mp_serve::serve_sim`)
//! in **virtual time** — decisions per second, p50/p99 scheduling
//! latency (ready → popped) — at 16/32/64 workers under Poisson and
//! bursty arrivals (quick mode drops the 64-worker point).
//!
//! Every configuration runs twice and the run is rejected unless the
//! two schedule hashes are bit-identical: the serving layer must be a
//! pure function of its config, with no wall clock anywhere. Every
//! number in the emitted JSON derives from virtual time, so
//! `BENCH_serve.json` itself is bit-deterministic across repeats.
//!
//! A second sweep benchmarks **warm serving**: the same open-loop
//! stream under a 20×-overload arrival process, cache off (cold) vs a
//! fresh [`mp_cache::ResultCache`] (warm), at mutation fractions 0 and
//! 0.25 ([`mp_serve::SubDagShape::mutation_frac`]). With mutation 0
//! every resubmission past the pool-warmup rounds is served from the
//! cache, so the gate requires ≥95 % hit rate and a ≥5× served-tasks
//! throughput speedup over cold; warm runs must stay bit-deterministic
//! too. Emits `BENCH_serve_cache.json` (override
//! `BENCH_SERVE_CACHE_OUT`).
//!
//! Emits `BENCH_serve.json` at the repository root (override with
//! `BENCH_SERVE_OUT`). Exits non-zero on a determinism violation, an
//! incomplete run (stall), or an admission ledger that does not balance.
//!
//! `BENCH_QUICK=1` shrinks the sweep to CI scale.

use std::fmt::Write as _;

use mp_bench::make_scheduler;
use mp_cache::ResultCache;
use mp_perfmodel::{PerfModel, TableModel, TimeFn};
use mp_platform::presets::homogeneous;
use mp_platform::types::ArchClass;
use mp_serve::{serve_sim, serve_sim_cached, ArrivalProcess, ServeConfig, ServeReport, TenantSpec};

/// Per-task service time in virtual µs (every task of the fork-join).
const TASK_US: f64 = 25.0;
/// Tasks per submitted sub-DAG: root + width(4) + join.
const TASKS_PER_SUBDAG: f64 = 6.0;

fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("gold", 4.0),
        TenantSpec::new("silver", 2.0),
        TenantSpec::new("bronze", 1.0),
        TenantSpec::new("bronze2", 1.0),
    ]
}

fn run_once(workers: usize, arrivals: ArrivalProcess, submissions: usize) -> ServeReport {
    let platform = homogeneous(workers);
    let model = TableModel::builder()
        .set("SRV", ArchClass::Cpu, TimeFn::Const(TASK_US))
        .build();
    let model: &dyn PerfModel = &model;
    let mut sched = make_scheduler("prio");
    let cfg = ServeConfig::new(tenants(), arrivals, submissions);
    serve_sim(&platform, model, sched.as_mut(), &cfg)
}

struct Row {
    workers: usize,
    arrivals: String,
    submissions: usize,
    decisions: u64,
    decisions_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    subdags_admitted: u64,
    subdags_rejected: u64,
    makespan_us: f64,
    schedule_hash: u64,
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let mut failed = false;

    let worker_counts: &[usize] = if quick { &[16, 32] } else { &[16, 32, 64] };
    let submissions = if quick { 2_000 } else { 20_000 };
    let mut rows: Vec<Row> = Vec::new();

    eprintln!("== serving mode (prio policy, {TASK_US} µs tasks, open loop) ==");
    for &workers in worker_counts {
        // ~80% offered utilization: tasks/s capacity × 0.8, in sub-DAGs.
        let rate = (workers as f64 * 1e6 / TASK_US / TASKS_PER_SUBDAG * 0.8).round();
        let arrival_set = [
            ArrivalProcess::Poisson { rate_per_sec: rate },
            ArrivalProcess::Bursty {
                rate_per_sec: rate,
                burst: 16,
            },
        ];
        for arrivals in arrival_set {
            let a = run_once(workers, arrivals.clone(), submissions);
            let b = run_once(workers, arrivals.clone(), submissions);
            if a.schedule_hash != b.schedule_hash {
                eprintln!(
                    "!! {workers}w {}: schedule hash diverged across repeats \
                     ({:016x} vs {:016x})",
                    arrivals.label(),
                    a.schedule_hash,
                    b.schedule_hash
                );
                failed = true;
            }
            if !a.is_complete() {
                eprintln!(
                    "!! {workers}w {}: run incomplete ({}/{} tasks, error {:?})",
                    arrivals.label(),
                    a.tasks_completed,
                    a.tasks_admitted,
                    a.error
                );
                failed = true;
            }
            if a.subdags_admitted + a.subdags_rejected != submissions as u64 {
                eprintln!(
                    "!! {workers}w {}: admission ledger does not balance \
                     ({} + {} != {submissions})",
                    arrivals.label(),
                    a.subdags_admitted,
                    a.subdags_rejected
                );
                failed = true;
            }
            eprintln!(
                "   {workers:>2}w {:<18} {:>9.0} dec/s  p50 {:>5} µs  p99 {:>6} µs  \
                 adm {:>6}  rej {:>5}  makespan {:>9.0} µs",
                arrivals.label(),
                a.decisions_per_sec(),
                a.p50_us(),
                a.p99_us(),
                a.subdags_admitted,
                a.subdags_rejected,
                a.makespan_us
            );
            rows.push(Row {
                workers,
                arrivals: arrivals.label(),
                submissions,
                decisions: a.decisions,
                decisions_per_sec: a.decisions_per_sec(),
                p50_us: a.p50_us(),
                p99_us: a.p99_us(),
                subdags_admitted: a.subdags_admitted,
                subdags_rejected: a.subdags_rejected,
                makespan_us: a.makespan_us,
                schedule_hash: a.schedule_hash,
            });
        }
    }

    // ---- Warm-resubmission cache scenario: near-identical sub-DAG
    // streams under 20× overload, cache off vs on. Cold is
    // service-limited; warm collapses to the arrival span because hits
    // complete at release without ever entering the scheduler.
    struct CacheRow {
        workers: usize,
        mutation_frac: f64,
        submissions: usize,
        cold_decisions: u64,
        warm_decisions: u64,
        cache_hits: u64,
        cache_misses: u64,
        hit_rate: f64,
        cold_served_per_sec: f64,
        warm_served_per_sec: f64,
        speedup_served: f64,
        cold_hash: u64,
        warm_hash: u64,
    }
    let cache_workers: &[usize] = if quick { &[16] } else { &[16, 32] };
    let cache_submissions = if quick { 1_000 } else { 10_000 };
    let mut crows: Vec<CacheRow> = Vec::new();

    eprintln!("== warm serving (cache-backed resubmission, 20x overload) ==");
    for &workers in cache_workers {
        for &mf in &[0.0f64, 0.25] {
            let rate = (workers as f64 * 1e6 / TASK_US / TASKS_PER_SUBDAG * 20.0).round();
            let run_cached = |cache: Option<&ResultCache>| -> ServeReport {
                let platform = homogeneous(workers);
                let model = TableModel::builder()
                    .set("SRV", ArchClass::Cpu, TimeFn::Const(TASK_US))
                    .build();
                let model: &dyn PerfModel = &model;
                let mut sched = make_scheduler("prio");
                let mut cfg = ServeConfig::new(
                    tenants(),
                    ArrivalProcess::Poisson { rate_per_sec: rate },
                    cache_submissions,
                );
                // Overload on purpose: admission must not shed load, or
                // cold and warm would serve different streams.
                cfg.admission.max_in_flight = 1 << 30;
                cfg.subdag.mutation_frac = mf;
                serve_sim_cached(&platform, model, sched.as_mut(), &cfg, cache)
            };
            let served_per_sec = |r: &ServeReport| r.tasks_completed as f64 / r.makespan_us * 1e6;

            let cold = run_cached(None);
            let cold2 = run_cached(None);
            let warm = run_cached(Some(&ResultCache::new()));
            let warm2 = run_cached(Some(&ResultCache::new()));
            for (label, a, b) in [("cold", &cold, &cold2), ("warm", &warm, &warm2)] {
                if a.schedule_hash != b.schedule_hash {
                    eprintln!(
                        "!! {workers}w mf={mf}: {label} schedule hash diverged across \
                         repeats ({:016x} vs {:016x})",
                        a.schedule_hash, b.schedule_hash
                    );
                    failed = true;
                }
                if !a.is_complete() {
                    eprintln!(
                        "!! {workers}w mf={mf}: {label} run incomplete ({}/{} tasks, error {:?})",
                        a.tasks_completed, a.tasks_admitted, a.error
                    );
                    failed = true;
                }
                if a.subdags_rejected != 0 {
                    eprintln!(
                        "!! {workers}w mf={mf}: {label} rejected {} sub-DAGs under \
                         unbounded admission",
                        a.subdags_rejected
                    );
                    failed = true;
                }
            }
            if cold.cache_hits != 0 || cold.cache_misses != 0 {
                eprintln!("!! {workers}w mf={mf}: cache-off run reported cache traffic");
                failed = true;
            }
            let hit_rate = warm.cache_hits as f64 / warm.tasks_admitted as f64;
            let speedup = served_per_sec(&warm) / served_per_sec(&cold);
            // The acceptance gate applies to pure resubmission: the
            // stream past pool warmup is all hits and the scheduler is
            // out of the path entirely.
            if mf == 0.0 && hit_rate < 0.95 {
                eprintln!("!! {workers}w mf=0: hit rate {hit_rate:.3} below 0.95 gate");
                failed = true;
            }
            if mf == 0.0 && speedup < 5.0 {
                eprintln!("!! {workers}w mf=0: warm speedup {speedup:.2}x below 5x gate");
                failed = true;
            }
            eprintln!(
                "   {workers:>2}w mf {mf:.2}  hits {:>6}  misses {:>5}  hit-rate {:>5.1}%  \
                 cold {:>9.0} t/s  warm {:>10.0} t/s  speedup {:>5.1}x",
                warm.cache_hits,
                warm.cache_misses,
                hit_rate * 100.0,
                served_per_sec(&cold),
                served_per_sec(&warm),
                speedup
            );
            crows.push(CacheRow {
                workers,
                mutation_frac: mf,
                submissions: cache_submissions,
                cold_decisions: cold.decisions,
                warm_decisions: warm.decisions,
                cache_hits: warm.cache_hits,
                cache_misses: warm.cache_misses,
                hit_rate,
                cold_served_per_sec: served_per_sec(&cold),
                warm_served_per_sec: served_per_sec(&warm),
                speedup_served: speedup,
                cold_hash: cold.schedule_hash,
                warm_hash: warm.schedule_hash,
            });
        }
    }

    let mut cj = String::new();
    let _ = writeln!(cj, "{{");
    let _ = writeln!(cj, "  \"schema\": \"bench-serve-cache/v1\",");
    let _ = writeln!(cj, "  \"quick\": {quick},");
    let _ = writeln!(cj, "  \"policy\": \"prio\",");
    let _ = writeln!(cj, "  \"task_us\": {TASK_US},");
    let _ = writeln!(cj, "  \"overload\": 20.0,");
    let _ = writeln!(cj, "  \"rows\": [");
    for (i, r) in crows.iter().enumerate() {
        let comma = if i + 1 < crows.len() { "," } else { "" };
        let _ = writeln!(
            cj,
            "    {{\"workers\": {}, \"mutation_frac\": {:.2}, \"submissions\": {}, \
             \"cold_decisions\": {}, \"warm_decisions\": {}, \"cache_hits\": {}, \
             \"cache_misses\": {}, \"hit_rate\": {:.4}, \"cold_served_per_sec\": {:.1}, \
             \"warm_served_per_sec\": {:.1}, \"speedup_served\": {:.2}, \
             \"cold_schedule_hash\": \"{:016x}\", \"warm_schedule_hash\": \"{:016x}\"}}{comma}",
            r.workers,
            r.mutation_frac,
            r.submissions,
            r.cold_decisions,
            r.warm_decisions,
            r.cache_hits,
            r.cache_misses,
            r.hit_rate,
            r.cold_served_per_sec,
            r.warm_served_per_sec,
            r.speedup_served,
            r.cold_hash,
            r.warm_hash
        );
    }
    let _ = writeln!(cj, "  ],");
    let _ = writeln!(cj, "  \"failed\": {failed}");
    let _ = writeln!(cj, "}}");
    let cache_out = std::env::var("BENCH_SERVE_CACHE_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_serve_cache.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    std::fs::write(&cache_out, &cj).expect("write BENCH_serve_cache.json");
    eprintln!("wrote {cache_out}");

    // ---- JSON emission (hand-rolled: no serde_json in this tree).
    // Virtual-time quantities only — the file is repeat-deterministic.
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"bench-serve/v1\",");
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(j, "  \"policy\": \"prio\",");
    let _ = writeln!(j, "  \"task_us\": {TASK_US},");
    let _ = writeln!(j, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"workers\": {}, \"arrivals\": \"{}\", \"submissions\": {}, \
             \"decisions\": {}, \"decisions_per_sec\": {:.1}, \"p50_us\": {}, \
             \"p99_us\": {}, \"subdags_admitted\": {}, \"subdags_rejected\": {}, \
             \"makespan_us\": {:.3}, \"schedule_hash\": \"{:016x}\"}}{comma}",
            r.workers,
            r.arrivals,
            r.submissions,
            r.decisions,
            r.decisions_per_sec,
            r.p50_us,
            r.p99_us,
            r.subdags_admitted,
            r.subdags_rejected,
            r.makespan_us,
            r.schedule_hash
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"failed\": {failed}");
    let _ = writeln!(j, "}}");

    let out = std::env::var("BENCH_SERVE_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &j).expect("write BENCH_serve.json");
    eprintln!("wrote {out}");

    if failed {
        eprintln!("FAIL: serve bench gate");
        std::process::exit(1);
    }
}
