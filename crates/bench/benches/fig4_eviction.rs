//! Fig. 4 bench: the eviction-mechanism ablation (Cholesky 960×20 tiles
//! on 1 GPU + 6 CPUs). Prints the regenerated idle/makespan rows, then
//! times the two full simulations.

use criterion::{criterion_group, criterion_main, Criterion};
use mp_apps::dense::{potrf, DenseConfig};
use mp_apps::dense_model;
use mp_bench::run_once;
use mp_platform::presets::fig4;

fn bench(c: &mut Criterion) {
    for row in mp_bench::figures::fig4::run() {
        println!(
            "[fig4] eviction={:5} makespan={:9.1} us gpu_idle={:5.1}% cpu_idle={:5.1}% (paper: 29% -> 1%)",
            row.eviction, row.makespan, row.gpu_idle_pct, row.cpu_idle_pct
        );
    }

    let w = potrf(DenseConfig::new(20 * 960, 960));
    let platform = fig4();
    let model = dense_model();
    let mut group = c.benchmark_group("fig4");
    for sched in ["multiprio", "multiprio-noevict"] {
        group.bench_function(sched, |b| {
            b.iter(|| {
                std::hint::black_box(run_once(&w.graph, &platform, &model, sched, 4).makespan)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
