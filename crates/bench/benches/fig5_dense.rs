//! Fig. 5 bench: dense potrf/getrf/geqrf — MultiPrio vs Dmdas on both
//! platforms. Prints the GFlop/s rows and relative gains (paper: mostly
//! comparable, Dmdas ahead on potrf/getrf at AMD, MultiPrio up to +14% on
//! large getrf), then times one representative simulation per kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use mp_apps::dense::{geqrf, getrf, potrf, DenseConfig};
use mp_apps::dense_model;
use mp_bench::figures::fig5;
use mp_bench::run_once;
use mp_platform::presets::intel_v100_streams;

fn bench(c: &mut Criterion) {
    let rows = fig5::run(fig5::Scale::Quick, &["multiprio", "dmdas"]);
    for r in &rows {
        println!(
            "[fig5] {:11} {:6} n={:6} tile={:5} {:10} {:8.1} GF/s",
            r.platform, r.kernel, r.n, r.tile, r.sched, r.gflops
        );
    }
    for (p, k, n, g) in fig5::gains_vs_dmdas(&rows) {
        println!("[fig5] gain {p:11} {k:6} n={n:6} {g:+6.1}%");
    }

    let platform = intel_v100_streams(2);
    let model = dense_model();
    let mut group = c.benchmark_group("fig5_sim");
    let cfg = DenseConfig::new(16 * 960, 960);
    for (name, w) in [
        ("potrf", potrf(cfg)),
        ("getrf", getrf(cfg)),
        ("geqrf", geqrf(cfg)),
    ] {
        group.bench_function(format!("{name}_multiprio"), |b| {
            b.iter(|| {
                std::hint::black_box(run_once(&w.graph, &platform, &model, "multiprio", 5).makespan)
            })
        });
        group.bench_function(format!("{name}_dmdas"), |b| {
            b.iter(|| {
                std::hint::black_box(run_once(&w.graph, &platform, &model, "dmdas", 5).makespan)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
