//! Ablation study of MultiPrio's design choices (DESIGN.md §10):
//!
//! * component ablations — eviction, locality, criticality, backlog
//!   normalization, energy policy;
//! * hyperparameter sweeps — locality window `n` and threshold `ε`
//!   (the paper fixes `n = 10`, `ε = 0.8` empirically);
//! * the hierarchical-task outlook workload (Sec. VII).
//!
//! Results are printed as tables; criterion times one representative
//! configuration per group.

use criterion::{criterion_group, criterion_main, Criterion};
use mp_apps::hierarchical::{hierarchical, hierarchical_model, HierConfig};
use mp_apps::sparseqr::{matrix, sparse_qr, SparseQrConfig};
use mp_apps::sparseqr_model;
use mp_bench::{make_scheduler, run_noisy};
use mp_platform::presets::intel_v100_streams;
use mp_sim::{simulate, SimConfig};
use multiprio::{MultiPrioConfig, MultiPrioScheduler};

fn component_ablation(c: &mut Criterion) {
    let w = sparse_qr(matrix("flower_7_4").unwrap(), SparseQrConfig::default());
    let platform = intel_v100_streams(4);
    let model = sparseqr_model();
    println!("== component ablation (sparse QR flower_7_4, Intel-V100) ==");
    for sched in [
        "multiprio",
        "multiprio-noevict",
        "multiprio-nolocality",
        "multiprio-nocrit",
        "multiprio-brwtotal",
        "multiprio-energy",
    ] {
        let r = run_noisy(&w.graph, &platform, &model, sched, 8, 0.25);
        println!("[ablation] {:22} {:8.3} s", sched, r.makespan / 1e6);
    }

    let mut group = c.benchmark_group("component_ablation");
    for sched in ["multiprio", "multiprio-noevict"] {
        group.bench_function(sched, |b| {
            b.iter(|| {
                std::hint::black_box(
                    run_noisy(&w.graph, &platform, &model, sched, 8, 0.25).makespan,
                )
            })
        });
    }
    group.finish();
}

fn hyperparameter_sweep(_c: &mut Criterion) {
    let w = sparse_qr(matrix("flower_7_4").unwrap(), SparseQrConfig::default());
    let platform = intel_v100_streams(4);
    let model = sparseqr_model();
    println!("== locality window n sweep (paper default n = 10) ==");
    for n in [1usize, 4, 10, 25, 50] {
        let cfg = MultiPrioConfig {
            locality_window: n,
            ..MultiPrioConfig::default()
        };
        let mut s = MultiPrioScheduler::new(cfg);
        let r = simulate(
            &w.graph,
            &platform,
            &model,
            &mut s,
            SimConfig::seeded(8).with_noise(0.25),
        );
        println!("[sweep] n={n:3}  {:8.3} s", r.makespan / 1e6);
    }
    println!("== epsilon sweep (paper default eps = 0.8) ==");
    for eps in [0.05, 0.2, 0.4, 0.8, 1.0] {
        let cfg = MultiPrioConfig {
            epsilon: eps,
            ..MultiPrioConfig::default()
        };
        let mut s = MultiPrioScheduler::new(cfg);
        let r = simulate(
            &w.graph,
            &platform,
            &model,
            &mut s,
            SimConfig::seeded(8).with_noise(0.25),
        );
        println!("[sweep] eps={eps:4}  {:8.3} s", r.makespan / 1e6);
    }
}

fn hierarchical_outlook(c: &mut Criterion) {
    let platform = intel_v100_streams(2);
    let model = hierarchical_model();
    println!("== hierarchical tasks (Sec. VII outlook): expansion ratio sweep ==");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "expand", "multiprio", "dmdas", "heteroprio"
    );
    for ratio in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let w = hierarchical(HierConfig {
            expand_ratio: ratio,
            ..Default::default()
        });
        let t = |sched: &str| {
            let mut s = make_scheduler(sched);
            simulate(
                &w.graph,
                &platform,
                &model,
                s.as_mut(),
                SimConfig::seeded(11),
            )
            .makespan
                / 1e3
        };
        println!(
            "{:>8.2} {:>10.1}ms {:>10.1}ms {:>10.1}ms",
            ratio,
            t("multiprio"),
            t("dmdas"),
            t("heteroprio")
        );
    }

    let w = hierarchical(HierConfig::default());
    let mut group = c.benchmark_group("hierarchical");
    for sched in ["multiprio", "dmdas"] {
        group.bench_function(sched, |b| {
            b.iter(|| {
                let mut s = make_scheduler(sched);
                std::hint::black_box(
                    simulate(
                        &w.graph,
                        &platform,
                        &model,
                        s.as_mut(),
                        SimConfig::seeded(11),
                    )
                    .makespan,
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = component_ablation, hyperparameter_sweep, hierarchical_outlook
}
criterion_main!(benches);
