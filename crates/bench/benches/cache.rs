//! Result-cache bench (DESIGN.md §12): warm-vs-cold wall time of the
//! content-addressed memoization layer on a ~64k-task tile Cholesky and
//! a TBFMM workload, plus an incremental-resubmission scenario — mutate
//! 1% of the Cholesky tasks and prove the warm run re-executes exactly
//! the dirty cone while everything outside it still hits.
//!
//! Emits `BENCH_cache.json` at the repository root (override with
//! `BENCH_CACHE_OUT`). Exits non-zero when a warm run is not a 100%
//! hit, when the re-executed set diverges from the expected dirty cone,
//! or — in full mode — when the warm Cholesky run is less than 5×
//! faster in wall time than the cold one. The CI `cache` job runs the
//! quick mode as a correctness smoke (the speedup gate needs full-scale
//! DAGs to dominate fixed setup costs, so quick mode only records it).
//!
//! `BENCH_QUICK=1` shrinks both workloads to CI scale.

use std::fmt::Write as _;
use std::time::Instant;

use mp_apps::dense::{potrf, DenseConfig};
use mp_apps::fmm::{fmm, Distribution, FmmConfig};
use mp_bench::make_scheduler;
use mp_cache::{changed_tasks, resubmit_with_mutation, ResultCache};
use mp_dag::graph::TaskGraph;
use mp_dag::ids::TaskId;
use mp_perfmodel::PerfModel;
use mp_platform::presets::simple;
use mp_sim::{simulate_cached, SimConfig, SimResult};

/// One cached run through the paper's scheduler, wall-timed.
fn run_once(g: &TaskGraph, model: &dyn PerfModel, cache: Option<&ResultCache>) -> (SimResult, f64) {
    let platform = simple(6, 2);
    let mut sched = make_scheduler("multiprio");
    let t0 = Instant::now();
    let r = simulate_cached(
        g,
        &platform,
        model,
        sched.as_mut(),
        SimConfig::seeded(42),
        cache,
    );
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(r.error.is_none(), "cached sim failed: {:?}", r.error);
    (r, wall_ms)
}

struct Scenario {
    name: &'static str,
    tasks: usize,
    cold_wall_ms: f64,
    warm_wall_ms: f64,
    speedup: f64,
    cold_makespan_us: f64,
    warm_hit_rate: f64,
}

/// Cold-populate `cache` from `g`, then run warm twice (min wall time —
/// the warm schedule is empty either way, only the clock jitters).
fn warm_cold(
    name: &'static str,
    g: &TaskGraph,
    model: &dyn PerfModel,
    cache: &ResultCache,
    failed: &mut bool,
) -> Scenario {
    let n = g.task_count();
    let (cold, cold_ms) = run_once(g, model, Some(cache));
    if cold.stats.cache_hits != 0 || cold.stats.cache_misses != n as u64 {
        eprintln!(
            "!! {name}: cold run hit {} / missed {} (expected 0 / {n})",
            cold.stats.cache_hits, cold.stats.cache_misses
        );
        *failed = true;
    }
    let (warm, warm_a) = run_once(g, model, Some(cache));
    let (_, warm_b) = run_once(g, model, Some(cache));
    let warm_ms = warm_a.min(warm_b);
    let hit_rate = warm.stats.cache_hits as f64 / n as f64;
    if warm.stats.cache_hits != n as u64 || !warm.trace.tasks.is_empty() {
        eprintln!(
            "!! {name}: warm run hit {}/{n} and executed {} task(s)",
            warm.stats.cache_hits,
            warm.trace.tasks.len()
        );
        *failed = true;
    }
    let speedup = cold_ms / warm_ms.max(1e-9);
    eprintln!(
        "   {name:9} {n:>6} tasks  cold {cold_ms:>9.1} ms  warm {warm_ms:>7.2} ms  \
         {speedup:>6.1}x  hit-rate {:.1}%",
        hit_rate * 100.0
    );
    Scenario {
        name,
        tasks: n,
        cold_wall_ms: cold_ms,
        warm_wall_ms: warm_ms,
        speedup,
        cold_makespan_us: cold.makespan,
        warm_hit_rate: hit_rate,
    }
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let mut failed = false;

    // ---- Warm vs cold: tile Cholesky (~64k tasks at full scale) and
    // TBFMM ----
    let nt = if quick { 16 } else { 73 }; // potrf_task_count(73) = 67,525
    let chol = potrf(DenseConfig::new(nt * 480, 480));
    let dense_model = mp_apps::dense_model();
    let chol_cache = ResultCache::new();
    eprintln!("== warm vs cold (multiprio, simple(6,2)) ==");
    let chol_row = warm_cold(
        "cholesky",
        &chol.graph,
        &dense_model,
        &chol_cache,
        &mut failed,
    );

    let fmm_cfg = if quick {
        FmmConfig {
            particles: 50_000,
            tree_height: 5,
            group_size: 32,
            distribution: Distribution::Uniform,
            seed: 6,
        }
    } else {
        FmmConfig {
            particles: 500_000,
            tree_height: 6,
            group_size: 64,
            distribution: Distribution::Uniform,
            seed: 6,
        }
    };
    let fmm_w = fmm(fmm_cfg);
    let fmm_model = mp_apps::fmm_model();
    let fmm_cache = ResultCache::new();
    let fmm_row = warm_cold("fmm", &fmm_w.graph, &fmm_model, &fmm_cache, &mut failed);
    let scenarios = [&chol_row, &fmm_row];

    if !quick && chol_row.speedup < 5.0 {
        eprintln!(
            "!! cholesky warm speedup {:.1}x below the 5x gate",
            chol_row.speedup
        );
        failed = true;
    }

    // ---- Incremental re-execution: mutate 1% of the Cholesky tasks
    // and resubmit against the populated cache. Exactly the dirty cone
    // (the mutated tasks plus every transitive consumer of their
    // outputs) must re-execute; everything else must still hit. ----
    let mutate_frac = 0.01;
    let edited = resubmit_with_mutation(&chol.graph, mutate_frac, 2026);
    let mut cone = changed_tasks(&chol.graph, &edited);
    cone.sort_unstable();
    let (inc, inc_ms) = run_once(&edited, &dense_model, Some(&chol_cache));
    let mut executed: Vec<TaskId> = inc.trace.tasks.iter().map(|s| s.task).collect();
    executed.sort_unstable();
    let exact = executed == cone;
    if !exact {
        eprintln!(
            "!! incremental: re-executed {} task(s), dirty cone has {}",
            executed.len(),
            cone.len()
        );
        failed = true;
    }
    eprintln!(
        "   incremental: {:.0}% mutation dirties {}/{} tasks, re-executed {}, \
         {} hits, {inc_ms:.1} ms wall (exact cone: {exact})",
        mutate_frac * 100.0,
        cone.len(),
        chol.graph.task_count(),
        executed.len(),
        inc.stats.cache_hits,
    );

    // ---- JSON emission (hand-rolled: no serde_json in this tree) ----
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"bench-cache/v1\",");
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(j, "  \"warm_vs_cold\": [");
    for (i, s) in scenarios.iter().enumerate() {
        let comma = if i + 1 < scenarios.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"name\": \"{}\", \"tasks\": {}, \"cold_wall_ms\": {:.2}, \
             \"warm_wall_ms\": {:.3}, \"warm_speedup\": {:.2}, \
             \"cold_makespan_us\": {:.1}, \"warm_hit_rate\": {:.4}}}{comma}",
            s.name,
            s.tasks,
            s.cold_wall_ms,
            s.warm_wall_ms,
            s.speedup,
            s.cold_makespan_us,
            s.warm_hit_rate
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(
        j,
        "  \"incremental\": {{\"tasks\": {}, \"mutate_frac\": {mutate_frac}, \
         \"dirty_cone\": {}, \"re_executed\": {}, \"cache_hits\": {}, \
         \"exact_cone\": {exact}, \"wall_ms\": {inc_ms:.2}}},",
        chol.graph.task_count(),
        cone.len(),
        executed.len(),
        inc.stats.cache_hits
    );
    let _ = writeln!(j, "  \"failed\": {failed}");
    let _ = writeln!(j, "}}");

    let out = std::env::var("BENCH_CACHE_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_cache.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &j).expect("write BENCH_cache.json");
    eprintln!("wrote {out}");

    if failed {
        eprintln!("FAIL: cache bench gate");
        std::process::exit(1);
    }
}
