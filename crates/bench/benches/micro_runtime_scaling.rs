//! Threaded-runtime throughput scaling: tasks/second as the worker count
//! grows, under the global-lock and sharded scheduler front-ends.
//!
//! The workload is deliberately scheduler-bound: thousands of near-empty
//! kernels, so almost all wall time is spent in push/pop/feedback. With
//! one mutex around the policy, adding workers adds contention instead of
//! throughput; the sharded multi-queue keeps the scheduling path mostly
//! uncontended and should pull ahead as workers increase (the adversarial
//! case for a global lock is exactly this one — cheap kernels).
//!
//! On a single-core host the absolute numbers cannot show parallel
//! speedup (threads timeshare the core); the front-end comparison at a
//! given worker count still reflects per-task synchronization overhead
//! and contended-wait time, which is what separates the two designs.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mp_bench::{make_scheduler, make_scheduler_factory};
use mp_dag::access::AccessMode;
use mp_perfmodel::{PerfModel, TableModel, TimeFn};
use mp_platform::presets::homogeneous;
use mp_platform::types::ArchClass;
use mp_runtime::{Runtime, TaskBuilder};

/// Independent chains of cheap kernels: `chains × depth` tasks, each a
/// handful of float ops. Chains give the pushes a `releaser` (exercising
/// shard affinity) while leaving ample parallelism.
fn cheap_workload(workers: usize) -> Runtime {
    let model: Arc<dyn PerfModel> = Arc::new(
        TableModel::builder()
            .set("TICK", ArchClass::Cpu, TimeFn::Const(1.0))
            .build(),
    );
    let mut rt = Runtime::new(homogeneous(workers), model);
    let chains = 64;
    let depth = 32;
    for c in 0..chains {
        let d = rt.register(vec![1.0; 8], &format!("c{c}"));
        for _ in 0..depth {
            rt.submit(
                TaskBuilder::new("TICK")
                    .access(d, AccessMode::ReadWrite)
                    .cpu(|ctx| {
                        for v in ctx.w(0) {
                            *v += 1.0;
                        }
                    })
                    .flops(8.0),
            );
        }
    }
    rt
}

fn bench_scaling(c: &mut Criterion) {
    let tasks = 64 * 32;
    for workers in [1usize, 2, 4, 8] {
        let mut group = c.benchmark_group(format!("runtime_2048_cheap_tasks_w{workers}"));
        group.throughput(Throughput::Elements(tasks as u64));
        // The runtime is built once and re-run per iteration (a run
        // re-executes the whole submitted DAG), so only the execution —
        // worker threads + scheduler front-end — is timed.
        group.bench_function("global-lock", |b| {
            let mut rt = cheap_workload(workers);
            b.iter(|| {
                let r = rt.run(make_scheduler("fifo")).expect("run failed");
                std::hint::black_box(r.makespan_us)
            })
        });
        group.bench_function("sharded", |b| {
            let mut rt = cheap_workload(workers);
            let factory = make_scheduler_factory("fifo");
            b.iter(|| {
                let r = rt.run_sharded(workers, &*factory).expect("run failed");
                std::hint::black_box(r.makespan_us)
            })
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scaling
}
criterion_main!(benches);
