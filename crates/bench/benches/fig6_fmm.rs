//! Fig. 6 bench: TBFMM execution time vs GPU streams for the three
//! schedulers on both platforms. Prints the series (paper: MultiPrio
//! achieves the shortest makespan), then times one simulation per
//! scheduler.

use criterion::{criterion_group, criterion_main, Criterion};
use mp_apps::fmm::{fmm, Distribution, FmmConfig};
use mp_apps::fmm_model;
use mp_bench::figures::fig6;
use mp_bench::run_noisy;
use mp_platform::presets::intel_v100_streams;

fn bench(c: &mut Criterion) {
    let rows = fig6::run(
        fig6::Scale::Quick,
        &["multiprio", "dmdas", "heteroprio"],
        &[1, 2, 4],
    );
    for r in &rows {
        println!(
            "[fig6] {:11} streams={} {:10} {:8.4} s",
            r.platform, r.streams, r.sched, r.time_s
        );
    }

    let w = fmm(FmmConfig {
        particles: 50_000,
        tree_height: 5,
        group_size: 32,
        distribution: Distribution::Uniform,
        seed: 6,
    });
    let platform = intel_v100_streams(2);
    let model = fmm_model();
    let mut group = c.benchmark_group("fig6_sim");
    for sched in ["multiprio", "dmdas", "heteroprio"] {
        group.bench_function(sched, |b| {
            b.iter(|| {
                std::hint::black_box(
                    run_noisy(&w.graph, &platform, &model, sched, 6, fig6::FMM_NOISE_CV).makespan,
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
