//! Fig. 8 bench: sparse multifrontal QR, ratio vs Dmdas on both platforms
//! (paper: MultiPrio +31% avg on Intel-V100, +12% on AMD-A100). Prints
//! the quick-scale ratio rows (plus TF17 as a mid-size witness where the
//! work-sharing gains appear), then times one simulation per scheduler.

use criterion::{criterion_group, criterion_main, Criterion};
use mp_apps::sparseqr::{matrix, sparse_qr, SparseQrConfig};
use mp_apps::sparseqr_model;
use mp_bench::figures::fig8;
use mp_bench::run_noisy;
use mp_platform::presets::{amd_a100_streams, intel_v100_streams};

fn bench(c: &mut Criterion) {
    let rows = fig8::run(fig8::Scale::Quick, &["multiprio", "dmdas", "heteroprio"]);
    for r in &rows {
        println!(
            "[fig8] {:11} {:14} {:10} {:8.3} s ratio {:5.3}",
            r.platform, r.matrix, r.sched, r.time_s, r.ratio_vs_dmdas
        );
    }
    for (p, m) in fig8::mean_multiprio_ratio(&rows) {
        println!("[fig8] mean multiprio ratio on {p}: {m:.3} (paper: 1.31 / 1.12)");
    }
    // Mid-size witness: TF17 on both platforms.
    let w = sparse_qr(matrix("TF17").unwrap(), SparseQrConfig::default());
    let model = sparseqr_model();
    for (pname, platform) in [
        ("Intel-V100", intel_v100_streams(4)),
        ("AMD-A100", amd_a100_streams(4)),
    ] {
        let mp = run_noisy(
            &w.graph,
            &platform,
            &model,
            "multiprio",
            8,
            fig8::SPARSE_NOISE_CV,
        );
        let dm = run_noisy(
            &w.graph,
            &platform,
            &model,
            "dmdas",
            8,
            fig8::SPARSE_NOISE_CV,
        );
        println!(
            "[fig8] TF17 {pname}: multiprio {:.3} s, dmdas {:.3} s, ratio {:.3}",
            mp.makespan / 1e6,
            dm.makespan / 1e6,
            dm.makespan / mp.makespan
        );
    }

    let small = sparse_qr(matrix("cat_ears_4_4").unwrap(), SparseQrConfig::default());
    let platform = intel_v100_streams(4);
    let mut group = c.benchmark_group("fig8_sim");
    for sched in ["multiprio", "dmdas", "heteroprio"] {
        group.bench_function(sched, |b| {
            b.iter(|| {
                std::hint::black_box(
                    run_noisy(
                        &small.graph,
                        &platform,
                        &model,
                        sched,
                        8,
                        fig8::SPARSE_NOISE_CV,
                    )
                    .makespan,
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
