//! Fig. 5's large-`getrf` witness: beyond ~16 GB the matrix no longer
//! fits a V100's memory and Dmdas's push-time prefetching starts fighting
//! the eviction machinery (the paper attributes its ~14% getrf loss above
//! n = 100k to exactly this). Run with a size, e.g.:
//!
//! ```sh
//! cargo run --release -p mp-bench --example getrf_large -- 61440
//! ```

fn main() {
    use mp_apps::dense::{getrf, DenseConfig};
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(46080);
    let w = getrf(DenseConfig::new(n, 960));
    let model = mp_apps::dense_model();
    let p = mp_platform::presets::intel_v100_streams(2);
    println!(
        "getrf n={n}: {} tasks, {:.1} GB matrix",
        w.graph.task_count(),
        w.graph.stats().total_bytes as f64 / 1e9
    );
    for sched in ["multiprio", "dmdas"] {
        let r = mp_bench::run_once(&w.graph, &p, &model, sched, 5);
        println!(
            "{sched:10} {:9.3} s  {:7.0} GF/s  wb={:6.0}MB prefetch={:6.0}MB demand={:6.0}MB",
            r.makespan / 1e6,
            r.gflops(w.total_flops),
            r.trace.bytes_transferred(mp_trace::TransferKind::WriteBack) as f64 / 1e6,
            r.trace.bytes_transferred(mp_trace::TransferKind::Prefetch) as f64 / 1e6,
            r.trace.bytes_transferred(mp_trace::TransferKind::Demand) as f64 / 1e6
        );
    }
}
