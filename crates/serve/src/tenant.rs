//! Tenants and the priority-weighting fairness layer.
//!
//! Fairness is layered *under* the scheduler, not inside it: at
//! admission time every task of a sub-DAG gets an **effective user
//! priority** — its base priority scaled by the tenant's weight and
//! boosted by starvation aging — written through the normal
//! `user_priority` channel. Any priority-bucketing policy (`prio`,
//! `dmdas`, the relaxed multi-queue's `score_key`) then enforces the
//! weighting without knowing tenants exist; affinity-scored policies
//! (MultiPrio's gain heaps) still see the weighting wherever they
//! consult the priority. Because the computation uses only virtual-time
//! quantities it is bit-deterministic under `serve_sim`.

/// One tenant (client) of the serving mode.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSpec {
    /// Display name (report rows).
    pub name: String,
    /// Fair-share weight; 1.0 is the neutral share. A weight-2 tenant's
    /// tasks land one resolution step higher per unit of base priority.
    pub weight: f64,
    /// Base priority every task of this tenant starts from (the
    /// sub-DAG generator may add per-task offsets on top).
    pub base_priority: i64,
}

impl TenantSpec {
    /// A tenant with the given fair-share weight and base priority 0.
    pub fn new(name: impl Into<String>, weight: f64) -> Self {
        Self {
            name: name.into(),
            weight,
            base_priority: 0,
        }
    }

    /// `n` equal-weight tenants named `t0..t{n-1}`.
    pub fn equal(n: usize) -> Vec<Self> {
        (0..n).map(|i| Self::new(format!("t{i}"), 1.0)).collect()
    }
}

/// Knobs of the fairness layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FairnessConfig {
    /// Priority buckets per unit of weighted priority: the weighted
    /// score is quantized to `resolution` steps, so weights closer than
    /// `1/resolution` collapse into the same bucket.
    pub resolution: i64,
    /// Starvation aging: a tenant with in-flight work but no completion
    /// for `aging_quantum_us` of virtual time gets +1 priority bucket
    /// per elapsed quantum on its next admitted sub-DAG.
    pub aging_quantum_us: f64,
    /// Cap on the aging boost (buckets), so a starved background tenant
    /// cannot leapfrog arbitrarily far.
    pub max_aging_boost: i64,
}

impl Default for FairnessConfig {
    fn default() -> Self {
        Self {
            resolution: 8,
            aging_quantum_us: 50_000.0,
            max_aging_boost: 4,
        }
    }
}

impl FairnessConfig {
    /// The aging boost (in buckets) for a tenant whose oldest unserved
    /// progress mark is `age_us` old. Returns 0 with a non-positive
    /// quantum (aging disabled).
    pub fn aging_boost(&self, age_us: f64) -> i64 {
        if self.aging_quantum_us <= 0.0 || age_us <= 0.0 {
            return 0;
        }
        ((age_us / self.aging_quantum_us) as i64).min(self.max_aging_boost)
    }
}

/// The effective user priority of a task admitted for a tenant.
///
/// `(base + 1)` keeps the weight visible at the common `base == 0`
/// (every tenant's default): the neutral tenant lands at exactly
/// `resolution`, a weight-2 tenant at `2·resolution`. Scaling *before*
/// quantization is the "weight scales the priority score before
/// bucketing" contract: two tenants whose weighted scores quantize
/// equally share a bucket and fall back to submission order.
pub fn effective_priority(base: i64, weight: f64, fairness: &FairnessConfig, boost: i64) -> i64 {
    let scaled = (base as f64 + 1.0) * weight * fairness.resolution as f64;
    scaled.round() as i64 + boost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_scales_before_bucketing() {
        let f = FairnessConfig::default();
        // Neutral tenant at base 0 → exactly one resolution unit.
        assert_eq!(effective_priority(0, 1.0, &f, 0), f.resolution);
        // Double weight → double bucket.
        assert_eq!(effective_priority(0, 2.0, &f, 0), 2 * f.resolution);
        // Weight scales the *score*, so higher base amplifies the gap.
        let a = effective_priority(3, 2.0, &f, 0);
        let b = effective_priority(3, 1.0, &f, 0);
        assert!(a - b > f.resolution);
        // Sub-resolution weight differences collapse into one bucket.
        assert_eq!(
            effective_priority(0, 1.0, &f, 0),
            effective_priority(0, 1.04, &f, 0)
        );
    }

    #[test]
    fn aging_boost_is_quantized_and_capped() {
        let f = FairnessConfig {
            resolution: 8,
            aging_quantum_us: 100.0,
            max_aging_boost: 3,
        };
        assert_eq!(f.aging_boost(0.0), 0);
        assert_eq!(f.aging_boost(99.0), 0);
        assert_eq!(f.aging_boost(100.0), 1);
        assert_eq!(f.aging_boost(250.0), 2);
        assert_eq!(f.aging_boost(1e9), 3);
        let off = FairnessConfig {
            aging_quantum_us: 0.0,
            ..f
        };
        assert_eq!(off.aging_boost(1e9), 0);
    }

    #[test]
    fn boost_adds_buckets() {
        let f = FairnessConfig::default();
        assert_eq!(
            effective_priority(0, 1.0, &f, 2),
            effective_priority(0, 1.0, &f, 0) + 2
        );
    }
}
