//! The virtual-time open-loop serving engine.
//!
//! A discrete-event loop over two event kinds — sub-DAG **arrivals**
//! (from a deterministic [`ArrivalProcess`]) and task **finishes** —
//! drives any sequential [`mp_sched::Scheduler`] against a graph that
//! grows *while it is being executed*:
//!
//! * each arrival stages one fork-join sub-DAG for its tenant through
//!   [`mp_dag::SubmissionStage`]; consecutive sub-DAGs of a tenant reuse
//!   the tenant's data handles, so cross-submission RAW/WAR/WAW edges
//!   resolve by data identity exactly as in the batch STF path;
//! * admission ([`AdmissionConfig`]) rejects a staged sub-DAG whole when
//!   in-flight bounds would overflow — the stage is dropped untouched,
//!   so later submissions still chain onto the last *admitted* writer;
//! * admitted tasks get their [`effective_priority`] (tenant weight ×
//!   base, plus starvation aging) before commit;
//! * task durations come from the performance model via the same
//!   [`Estimator`] the batch engines use; workers are busy-until slots.
//!
//! Everything is a pure function of `(platform, model, scheduler
//! policy, config)`: no wall clock, no ambient RNG — repeat runs are
//! bit-identical, which [`crate::ServeReport::schedule_hash`] makes
//! checkable in one comparison.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use mp_cache::{Lookup, ResultCache};
use mp_dag::access::AccessMode;
use mp_dag::hash;
use mp_dag::ids::{DataId, TaskId, TaskTypeId};
use mp_dag::stf::StfBuilder;
use mp_perfmodel::{Estimator, PerfModel};
use mp_platform::types::{MemNodeId, Platform, WorkerId};
use mp_sched::api::{DataLocator, LoadInfo, SchedEvent, SchedView, Scheduler};
use mp_trace::{CounterSnapshot, LatencyStats};

use crate::admission::AdmissionConfig;
use crate::arrival::ArrivalProcess;
use crate::report::{ServeReport, TenantStats};
use crate::tenant::{effective_priority, FairnessConfig, TenantSpec};

/// Shape of the sub-DAG one arrival submits: a fork-join of
/// `1 + width + 1` tasks (root writer → `width` parallel readers → join)
/// over the tenant's persistent handles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SubDagShape {
    /// Parallel middle tasks per submission.
    pub width: usize,
    /// Work estimate per task (feeds rate-based models).
    pub flops: f64,
    /// Handle-pool slots per tenant: submission `s` of a tenant uses
    /// slot `s % pool`, so up to `pool` of its sub-DAGs can be in
    /// flight concurrently while every `pool`-th submission still
    /// chains on its predecessor by data identity (RAW/WAR/WAW on the
    /// slot's handles).
    pub pool: usize,
    /// Fraction of submissions whose flops are deterministically
    /// perturbed (drawn per arrival index from [`ServeConfig::seed`]).
    /// Flops are part of the cache fingerprint, so a mutated
    /// submission's whole sub-DAG re-executes under warm serving —
    /// `0.0` (the default) streams bit-identical resubmissions.
    pub mutation_frac: f64,
}

impl Default for SubDagShape {
    fn default() -> Self {
        Self {
            width: 4,
            flops: 1000.0,
            pool: 4,
            mutation_frac: 0.0,
        }
    }
}

/// Full configuration of one serving run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The tenants submitting work (round-robin over arrivals).
    pub tenants: Vec<TenantSpec>,
    /// Priority-weighting fairness layer.
    pub fairness: FairnessConfig,
    /// Admission bounds.
    pub admission: AdmissionConfig,
    /// Open-loop arrival process.
    pub arrivals: ArrivalProcess,
    /// Total sub-DAG submissions to inject.
    pub submissions: usize,
    /// Shape of each submitted sub-DAG.
    pub subdag: SubDagShape,
    /// Seed of every deterministic draw (arrival gaps).
    pub seed: u64,
}

impl ServeConfig {
    /// A run of `submissions` sub-DAGs from `tenants` under `arrivals`,
    /// with default fairness/admission/shape knobs.
    pub fn new(tenants: Vec<TenantSpec>, arrivals: ArrivalProcess, submissions: usize) -> Self {
        Self {
            tenants,
            fairness: FairnessConfig::default(),
            admission: AdmissionConfig::default(),
            arrivals,
            submissions,
            subdag: SubDagShape::default(),
            seed: 0x5EED_5E12_7E00_0001,
        }
    }
}

/// Why a serving run stopped early.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The scheduler held back every pending task past the re-poll
    /// budget with no event left to make progress — a policy hold-back
    /// bug (or a task no worker can execute).
    Stalled {
        /// Admitted-but-incomplete tasks at the stall.
        pending: usize,
        /// Tasks completed before the stall.
        completed: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Stalled { pending, completed } => write!(
                f,
                "serving run stalled with {pending} task(s) pending after {completed} completion(s)"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// Unified-memory locality (mirrors the threaded runtime): every handle
/// is resident everywhere, so locality heuristics see a flat world.
struct Unified;

impl DataLocator for Unified {
    fn is_on(&self, _d: DataId, _m: MemNodeId) -> bool {
        true
    }

    fn holders(&self, _d: DataId) -> Vec<MemNodeId> {
        vec![MemNodeId(0)]
    }
}

/// Busy-until table in virtual µs (f64 bits; atomics only because the
/// [`LoadInfo`] trait takes `&self`).
struct Loads(Vec<AtomicU64>);

impl Loads {
    fn new(n: usize) -> Self {
        Self((0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect())
    }

    fn set(&self, w: usize, v: f64) {
        self.0[w].store(v.to_bits(), Ordering::Relaxed);
    }
}

impl LoadInfo for Loads {
    fn busy_until(&self, w: WorkerId) -> f64 {
        f64::from_bits(self.0[w.index()].load(Ordering::Relaxed))
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum EvKind {
    /// Arrival `k` of the precomputed open-loop sequence.
    Arrival(u32),
    /// Worker `wi` finishes task `t` started at `started` µs.
    Finish { wi: u32, t: TaskId, started: f64 },
}

#[derive(Clone, Copy, Debug)]
struct Ev {
    at: f64,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.at.to_bits() == other.at.to_bits() && self.seq == other.seq
    }
}

impl Eq for Ev {}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .total_cmp(&other.at)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Bounded re-poll when the scheduler holds back work with no event
/// left: virtual time advances by this quantum per attempt.
const REPOLL_US: f64 = 100.0;
const MAX_REPOLLS: usize = 100_000;

struct Engine<'e> {
    platform: &'e Platform,
    model: &'e dyn PerfModel,
    cfg: &'e ServeConfig,
    /// Shared result cache (`None` = caching off, bit-identical to the
    /// pre-cache engine).
    cache: Option<&'e ResultCache>,
    stf: StfBuilder,
    loc: Unified,
    load: Loads,
    idle: Vec<bool>,
    /// Per-task state, indexed by task index (grown at commit).
    indeg: Vec<usize>,
    done: Vec<bool>,
    ready_at: Vec<f64>,
    tenant_of: Vec<u32>,
    heap: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    admitted_tasks: u64,
    completed_tasks: u64,
    tenant_in_flight: Vec<usize>,
    /// Virtual instant of the tenant's last progress mark (completion,
    /// or admission while its pipeline was empty) — the starvation-aging
    /// reference point.
    last_progress: Vec<f64>,
    tstats: Vec<TenantStats>,
    latency: LatencyStats,
    samples: Vec<u64>,
    decisions: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_invalidations: u64,
    schedule_hash: u64,
    makespan: f64,
    ttype: TaskTypeId,
    /// `slots[tenant][slot]` — the persistent handles one sub-DAG
    /// instance of that tenant writes through.
    slots: Vec<Vec<SlotHandles>>,
    /// Arrivals seen per tenant (admitted or not) — drives the slot
    /// rotation deterministically.
    arrivals_seen: Vec<u64>,
}

struct SlotHandles {
    root: DataId,
    outs: Vec<DataId>,
    join: DataId,
}

impl<'e> Engine<'e> {
    fn new(
        platform: &'e Platform,
        model: &'e dyn PerfModel,
        cfg: &'e ServeConfig,
        cache: Option<&'e ResultCache>,
    ) -> Self {
        assert!(!cfg.tenants.is_empty(), "serving needs at least one tenant");
        let nw = platform.worker_count();
        let mut stf = StfBuilder::new();
        let ttype = stf.graph_mut().register_type("SRV", true, true);
        let nt = cfg.tenants.len();
        let pool = cfg.subdag.pool.max(1);
        let mut slots = Vec::with_capacity(nt);
        for t in &cfg.tenants {
            let tenant_slots = (0..pool)
                .map(|s| SlotHandles {
                    root: stf
                        .graph_mut()
                        .add_data(1024, format!("{}.{s}.root", t.name)),
                    outs: (0..cfg.subdag.width)
                        .map(|i| {
                            stf.graph_mut()
                                .add_data(1024, format!("{}.{s}.o{i}", t.name))
                        })
                        .collect(),
                    join: stf
                        .graph_mut()
                        .add_data(1024, format!("{}.{s}.join", t.name)),
                })
                .collect::<Vec<_>>();
            slots.push(tenant_slots);
        }
        let tstats = cfg
            .tenants
            .iter()
            .map(|t| TenantStats {
                name: t.name.clone(),
                weight: t.weight,
                ..TenantStats::default()
            })
            .collect();
        Self {
            platform,
            model,
            cfg,
            cache,
            stf,
            loc: Unified,
            load: Loads::new(nw),
            idle: vec![true; nw],
            indeg: Vec::new(),
            done: Vec::new(),
            ready_at: Vec::new(),
            tenant_of: Vec::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            admitted_tasks: 0,
            completed_tasks: 0,
            tenant_in_flight: vec![0; nt],
            last_progress: vec![0.0; nt],
            tstats,
            latency: LatencyStats::default(),
            samples: Vec::new(),
            decisions: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_invalidations: 0,
            schedule_hash: hash::FNV_OFFSET,
            makespan: 0.0,
            ttype,
            slots,
            arrivals_seen: vec![0; nt],
        }
    }

    fn push_event(&mut self, at: f64, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Ev { at, seq, kind }));
    }

    fn view(&self, now: f64) -> SchedView<'_> {
        SchedView {
            est: Estimator::new(self.stf.graph(), self.platform, self.model),
            loc: &self.loc,
            load: &self.load,
            now,
        }
    }

    fn in_flight(&self) -> usize {
        (self.admitted_tasks - self.completed_tasks) as usize
    }

    fn fold_decision(&mut self, t: TaskId, wi: usize, now: f64) {
        for word in [t.index() as u64, wi as u64, now.to_bits()] {
            self.schedule_hash ^= word;
            self.schedule_hash = self.schedule_hash.wrapping_mul(hash::FNV_PRIME);
        }
    }

    /// One arrival: stage the tenant's sub-DAG, decide admission, commit
    /// with effective priorities, push newly-ready tasks.
    fn on_arrival(&mut self, sched: &mut dyn Scheduler, k: usize, now: f64) {
        let ti = k % self.cfg.tenants.len();
        let slot = (self.arrivals_seen[ti] % self.slots[ti].len() as u64) as usize;
        self.arrivals_seen[ti] += 1;
        let width = self.cfg.subdag.width;
        let n_tasks = width + 2;
        let decision =
            self.cfg
                .admission
                .check(ti, n_tasks, self.in_flight(), self.tenant_in_flight[ti]);
        if decision.is_err() {
            self.tstats[ti].subdags_rejected += 1;
            return;
        }
        let boost = if self.tenant_in_flight[ti] > 0 {
            self.cfg.fairness.aging_boost(now - self.last_progress[ti])
        } else {
            self.last_progress[ti] = now;
            0
        };
        let spec = &self.cfg.tenants[ti];
        let eff = effective_priority(spec.base_priority, spec.weight, &self.cfg.fairness, boost);
        // Flops feed the fingerprint, so a mutated arrival is a cache
        // miss over its whole sub-DAG. The perturbation is drawn per
        // arrival index — a constant offset (as `resubmit_with_mutation`
        // uses on closed DAGs) would make all mutated arrivals a second
        // warm family that hits itself.
        let mutate = self.cfg.subdag.mutation_frac > 0.0
            && mp_fault::unit(self.cfg.seed, k as u64, 0xCACE) < self.cfg.subdag.mutation_frac;
        let flops = if mutate {
            self.cfg.subdag.flops * (1.0625 + mp_fault::unit(self.cfg.seed, k as u64, 0xF10)) + 1.0
        } else {
            self.cfg.subdag.flops
        };
        let sh = &self.slots[ti][slot];
        let (ttype, root, join) = (self.ttype, sh.root, sh.join);
        let outs = sh.outs.clone();
        let mut stage = self.stf.begin_submission();
        stage.submit_prio(
            ttype,
            vec![(root, AccessMode::Write)],
            flops,
            eff,
            format!("t{ti}.s{k}.root"),
        );
        for (i, &o) in outs.iter().enumerate() {
            stage.submit_prio(
                ttype,
                vec![(root, AccessMode::Read), (o, AccessMode::Write)],
                flops,
                eff,
                format!("t{ti}.s{k}.mid{i}"),
            );
        }
        let mut join_acc: Vec<(DataId, AccessMode)> =
            outs.iter().map(|&o| (o, AccessMode::Read)).collect();
        join_acc.push((join, AccessMode::Write));
        stage.submit_prio(ttype, join_acc, flops, eff, format!("t{ti}.s{k}.join"));
        let ids = stage.commit();
        debug_assert_eq!(ids.len(), n_tasks);

        self.tstats[ti].subdags_admitted += 1;
        self.tstats[ti].tasks_admitted += ids.len() as u64;
        self.admitted_tasks += ids.len() as u64;
        self.tenant_in_flight[ti] += ids.len();
        let mut ready = Vec::new();
        for &t in &ids {
            debug_assert_eq!(t.index(), self.indeg.len());
            let open_preds = self
                .stf
                .graph()
                .preds(t)
                .iter()
                .filter(|p| !self.done[p.index()])
                .count();
            self.indeg.push(open_preds);
            self.done.push(false);
            self.ready_at.push(now);
            self.tenant_of.push(ti as u32);
            if open_preds == 0 {
                ready.push(t);
            }
        }
        for t in ready {
            self.release(sched, t, None, now);
        }
    }

    /// Release a task whose dependencies are all met: probe the result
    /// cache first (when one is installed) and complete verified hits
    /// in place — never pushed, popped or estimated, no latency sample
    /// — draining the cascade of successors those completions release.
    /// Misses (and every task when caching is off) go to the scheduler
    /// exactly as before.
    fn release(&mut self, sched: &mut dyn Scheduler, t: TaskId, from: Option<WorkerId>, now: f64) {
        let mut work = vec![(t, from)];
        while let Some((t, from)) = work.pop() {
            self.ready_at[t.index()] = now;
            if !self.probe_hit(t) {
                let view = self.view(now);
                sched.push(t, from, &view);
                continue;
            }
            // Verified hit: completes at `now` with zero virtual cost.
            self.done[t.index()] = true;
            self.completed_tasks += 1;
            let ti = self.tenant_of[t.index()] as usize;
            self.tstats[ti].tasks_completed += 1;
            self.tstats[ti].cache_hits += 1;
            self.tenant_in_flight[ti] -= 1;
            self.last_progress[ti] = now;
            self.makespan = now;
            let succs: Vec<TaskId> = self.stf.graph().succs(t).to_vec();
            for s in succs {
                self.indeg[s.index()] -= 1;
                if self.indeg[s.index()] == 0 {
                    work.push((s, None));
                }
            }
        }
    }

    /// Probe the cache for `t` (`need_payload = false`: virtual time
    /// materializes no bytes). Counts every outcome; `true` on a
    /// verified hit.
    fn probe_hit(&mut self, t: TaskId) -> bool {
        let Some(cache) = self.cache else {
            return false;
        };
        match self
            .stf
            .graph()
            .cache_meta(t)
            .map(|m| cache.lookup(m, false))
        {
            Some(Lookup::Hit(_)) => {
                self.cache_hits += 1;
                true
            }
            Some(Lookup::Invalidated) => {
                self.cache_invalidations += 1;
                self.cache_misses += 1;
                false
            }
            _ => {
                // No entry — or no metadata at all (such tasks can
                // never hit).
                self.cache_misses += 1;
                false
            }
        }
    }

    /// One task completion: publish it to the policy, release
    /// successors, free the worker.
    fn on_finish(
        &mut self,
        sched: &mut dyn Scheduler,
        wi: usize,
        t: TaskId,
        started: f64,
        now: f64,
    ) {
        self.done[t.index()] = true;
        self.completed_tasks += 1;
        let ti = self.tenant_of[t.index()] as usize;
        self.tstats[ti].tasks_completed += 1;
        self.tenant_in_flight[ti] -= 1;
        self.last_progress[ti] = now;
        self.makespan = now;
        self.idle[wi] = true;
        // Populate the result cache (payload-less: virtual time has no
        // bytes — the threaded runtime stores real buffers).
        if let Some(cache) = self.cache {
            if let Some(meta) = self.stf.graph().cache_meta(t) {
                let g = self.stf.graph();
                let bytes: u64 = g
                    .task(t)
                    .accesses
                    .iter()
                    .filter(|a| a.mode.writes())
                    .map(|a| g.data_desc(a.data).size)
                    .sum();
                cache.insert(meta, None, bytes);
            }
        }
        if sched.consumes_feedback() {
            let view = self.view(now);
            sched.feedback(
                &SchedEvent::TaskFinished {
                    t,
                    w: WorkerId::from_index(wi),
                    elapsed_us: now - started,
                },
                &view,
            );
        }
        let succs: Vec<TaskId> = self.stf.graph().succs(t).to_vec();
        for s in succs {
            self.indeg[s.index()] -= 1;
            if self.indeg[s.index()] == 0 {
                self.release(sched, s, Some(WorkerId::from_index(wi)), now);
            }
        }
    }

    /// Hand tasks to idle workers until no pop succeeds.
    fn try_assign(&mut self, sched: &mut dyn Scheduler, now: f64) {
        loop {
            let mut assigned = false;
            for wi in 0..self.idle.len() {
                if !self.idle[wi] {
                    continue;
                }
                let w = WorkerId::from_index(wi);
                let popped = {
                    let view = self.view(now);
                    sched.pop(w, &view)
                };
                let Some(t) = popped else { continue };
                let arch = self.platform.worker(w).arch;
                let dt = {
                    let view = self.view(now);
                    view.est.delta_or_mean(t, arch).us()
                };
                let lat_us = (now - self.ready_at[t.index()]).max(0.0).round() as u64;
                self.latency.record(lat_us);
                self.samples.push(lat_us);
                let ti = self.tenant_of[t.index()] as usize;
                self.tstats[ti].latency.record(lat_us);
                self.decisions += 1;
                self.fold_decision(t, wi, now);
                self.idle[wi] = false;
                self.load.set(wi, now + dt);
                if sched.consumes_feedback() {
                    let view = self.view(now);
                    sched.feedback(&SchedEvent::TaskStarted { t, w }, &view);
                }
                self.push_event(
                    now + dt,
                    EvKind::Finish {
                        wi: wi as u32,
                        t,
                        started: now,
                    },
                );
                assigned = true;
            }
            if !assigned {
                return;
            }
        }
    }

    /// The scheduler returned `None` everywhere but work is pending and
    /// no event is left: advance virtual time in bounded quanta (policy
    /// hold-backs can expire by time alone). Returns `false` on stall.
    fn repoll(&mut self, sched: &mut dyn Scheduler, from: f64) -> bool {
        let mut now = from;
        for _ in 0..MAX_REPOLLS {
            now += REPOLL_US;
            self.try_assign(sched, now);
            if !self.heap.is_empty() {
                return true;
            }
        }
        false
    }

    fn into_report(self, scheduler: String, error: Option<ServeError>) -> ServeReport {
        let nt = self.cfg.tenants.len();
        let mut counters = CounterSnapshot {
            tenant_admitted: vec![0; nt],
            tenant_rejected: vec![0; nt],
            tenant_completed: vec![0; nt],
            ..Default::default()
        };
        for (ti, ts) in self.tstats.iter().enumerate() {
            counters.tenant_admitted[ti] = ts.tasks_admitted;
            counters.tenant_rejected[ti] = ts.subdags_rejected;
            counters.tenant_completed[ti] = ts.tasks_completed;
        }
        counters.cache_hits = self.cache_hits;
        counters.cache_misses = self.cache_misses;
        counters.cache_invalidations = self.cache_invalidations;
        ServeReport {
            scheduler,
            workers: self.platform.worker_count(),
            arrivals: self.cfg.arrivals.label(),
            makespan_us: self.makespan,
            decisions: self.decisions,
            tasks_admitted: self.admitted_tasks,
            tasks_completed: self.completed_tasks,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            subdags_admitted: self.tstats.iter().map(|t| t.subdags_admitted).sum(),
            subdags_rejected: self.tstats.iter().map(|t| t.subdags_rejected).sum(),
            latency: self.latency,
            samples_us: self.samples,
            tenants: self.tstats,
            counters,
            schedule_hash: self.schedule_hash,
            error,
            sorted: OnceLock::new(),
        }
    }
}

/// Run one open-loop serving session in virtual time (see module docs).
/// Deterministic: equal inputs produce a bit-identical [`ServeReport`].
/// Equivalent to [`serve_sim_cached`] with caching off.
pub fn serve_sim(
    platform: &Platform,
    model: &dyn PerfModel,
    sched: &mut dyn Scheduler,
    cfg: &ServeConfig,
) -> ServeReport {
    serve_sim_cached(platform, model, sched, cfg, None)
}

/// [`serve_sim`] with an optional shared [`ResultCache`]: every task
/// released with all dependencies met probes the cache first, and a
/// verified hit completes at the release instant without ever entering
/// the scheduler (no push/pop/estimate, no latency sample, no decision
/// fold) — cascades of all-hit successors drain in the same instant.
/// Completed tasks populate the cache payload-less, so a warm
/// resubmission of an identical sub-DAG over the same tenant slot hits
/// end to end. With `cache: None` the run is bit-identical to the
/// pre-cache engine.
pub fn serve_sim_cached(
    platform: &Platform,
    model: &dyn PerfModel,
    sched: &mut dyn Scheduler,
    cfg: &ServeConfig,
    cache: Option<&ResultCache>,
) -> ServeReport {
    let mut eng = Engine::new(platform, model, cfg, cache);
    let times = cfg.arrivals.times_us(cfg.submissions, cfg.seed);
    for (k, &at) in times.iter().enumerate() {
        eng.push_event(at, EvKind::Arrival(k as u32));
    }
    let mut error = None;
    while let Some(Reverse(ev)) = eng.heap.pop() {
        let now = ev.at;
        match ev.kind {
            EvKind::Arrival(k) => eng.on_arrival(sched, k as usize, now),
            EvKind::Finish { wi, t, started } => eng.on_finish(sched, wi as usize, t, started, now),
        }
        eng.try_assign(sched, now);
        if eng.heap.is_empty()
            && eng.completed_tasks < eng.admitted_tasks
            && !eng.repoll(sched, now)
        {
            error = Some(ServeError::Stalled {
                pending: eng.in_flight(),
                completed: eng.completed_tasks,
            });
            break;
        }
    }
    eng.into_report(sched.name().to_string(), error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_perfmodel::{TableModel, TimeFn};
    use mp_platform::presets::homogeneous;
    use mp_platform::types::ArchClass;
    use mp_sched::EagerPrioScheduler;

    fn model() -> TableModel {
        TableModel::builder()
            .set("SRV", ArchClass::Cpu, TimeFn::Const(25.0))
            .build()
    }

    fn run(cfg: &ServeConfig, workers: usize) -> ServeReport {
        let platform = homogeneous(workers);
        let model = model();
        let mut sched = EagerPrioScheduler::new();
        serve_sim(&platform, &model, &mut sched, cfg)
    }

    #[test]
    fn open_loop_run_completes_and_is_deterministic() {
        let cfg = ServeConfig::new(
            TenantSpec::equal(3),
            ArrivalProcess::Poisson {
                rate_per_sec: 5000.0,
            },
            200,
        );
        let a = run(&cfg, 8);
        let b = run(&cfg, 8);
        assert!(a.is_complete(), "error: {:?}", a.error);
        assert_eq!(a.tasks_completed, a.tasks_admitted);
        assert!(a.decisions > 0 && a.makespan_us > 0.0);
        // Bit-identical repeat.
        assert_eq!(a.schedule_hash, b.schedule_hash);
        assert_eq!(a.samples_us, b.samples_us);
        assert_eq!(a.makespan_us.to_bits(), b.makespan_us.to_bits());
        // Latency accounting covers every decision.
        assert_eq!(a.latency.count, a.decisions);
        assert_eq!(a.samples_us.len() as u64, a.decisions);
    }

    #[test]
    fn overload_rejects_with_backpressure_but_strands_nothing() {
        let mut cfg = ServeConfig::new(
            TenantSpec::equal(2),
            ArrivalProcess::Bursty {
                rate_per_sec: 50_000.0,
                burst: 16,
            },
            400,
        );
        cfg.admission.max_in_flight = 48;
        let r = run(&cfg, 2);
        assert!(r.subdags_rejected > 0, "expected backpressure rejections");
        // Every *admitted* task still completed: rejections never strand
        // an admitted predecessor.
        assert!(r.is_complete(), "error: {:?}", r.error);
        assert_eq!(
            r.subdags_admitted + r.subdags_rejected,
            cfg.submissions as u64
        );
        // In-flight never exceeded the high-water mark: each admitted
        // sub-DAG fits the bound by construction of the check.
        assert!(r.tasks_admitted >= r.subdags_admitted * 6);
    }

    #[test]
    fn heavier_tenant_sees_lower_scheduling_latency_under_saturation() {
        let mut cfg = ServeConfig::new(
            vec![TenantSpec::new("heavy", 8.0), TenantSpec::new("light", 1.0)],
            ArrivalProcess::Poisson {
                rate_per_sec: 40_000.0,
            },
            600,
        );
        cfg.admission.max_in_flight = 2048;
        // Aging off: measure pure weight separation.
        cfg.fairness.aging_quantum_us = 0.0;
        let r = run(&cfg, 4);
        assert!(r.is_complete(), "error: {:?}", r.error);
        let heavy = &r.tenants[0];
        let light = &r.tenants[1];
        assert!(heavy.tasks_completed > 0 && light.tasks_completed > 0);
        assert!(
            heavy.latency.mean_us() < light.latency.mean_us(),
            "weighted tenant should be scheduled first under saturation: \
             heavy {:.1}µs vs light {:.1}µs",
            heavy.latency.mean_us(),
            light.latency.mean_us()
        );
    }

    #[test]
    fn starvation_aging_narrows_the_latency_gap() {
        let base = {
            let mut cfg = ServeConfig::new(
                vec![TenantSpec::new("heavy", 8.0), TenantSpec::new("light", 1.0)],
                ArrivalProcess::Poisson {
                    rate_per_sec: 40_000.0,
                },
                600,
            );
            cfg.admission.max_in_flight = 2048;
            cfg.fairness.aging_quantum_us = 0.0;
            cfg
        };
        let mut aged = base.clone();
        aged.fairness.aging_quantum_us = 200.0;
        aged.fairness.max_aging_boost = 64;
        let r0 = run(&base, 4);
        let r1 = run(&aged, 4);
        assert!(r0.is_complete() && r1.is_complete());
        let gap = |r: &ServeReport| r.tenants[1].latency.mean_us() - r.tenants[0].latency.mean_us();
        assert!(
            gap(&r1) < gap(&r0),
            "aging should narrow the starved tenant's latency gap: \
             {:.1}µs (aged) vs {:.1}µs (no aging)",
            gap(&r1),
            gap(&r0)
        );
    }

    #[test]
    fn warm_resubmission_hits_the_cache_and_skips_the_scheduler() {
        let cfg = ServeConfig::new(
            TenantSpec::equal(3),
            ArrivalProcess::Poisson {
                rate_per_sec: 5000.0,
            },
            200,
        );
        let platform = homogeneous(8);
        let model = model();
        let cache = mp_cache::ResultCache::new();
        let mut sched = EagerPrioScheduler::new();
        let r = serve_sim_cached(&platform, &model, &mut sched, &cfg, Some(&cache));
        assert!(r.is_complete(), "error: {:?}", r.error);
        // Serve roots are write-only, so submission s and s+pool on the
        // same tenant slot key identically: after one cold round per
        // (tenant, slot) — 3 tenants × 4 slots × 6 tasks — everything
        // hits, in the same single run.
        let cold = 3 * 4 * 6;
        assert_eq!(r.cache_misses, cold);
        assert_eq!(r.cache_hits, r.tasks_admitted - cold);
        assert!(
            r.cache_hits as f64 >= 0.9 * r.tasks_admitted as f64,
            "hits {} of {}",
            r.cache_hits,
            r.tasks_admitted
        );
        // Hit tasks never entered the scheduler: decisions and latency
        // samples cover only the cold misses.
        assert_eq!(r.decisions, r.cache_misses);
        assert_eq!(r.samples_us.len() as u64, r.decisions);
        assert_eq!(r.latency.count, r.decisions);
        // Per-tenant hit accounting adds up, and hits are a subset of
        // completions.
        assert_eq!(
            r.tenants.iter().map(|t| t.cache_hits).sum::<u64>(),
            r.cache_hits
        );
        for t in &r.tenants {
            assert!(t.cache_hits <= t.tasks_completed);
        }
        assert_eq!(r.counters.cache_hits, r.cache_hits);
        assert_eq!(r.counters.cache_misses, r.cache_misses);
    }

    #[test]
    fn warm_cache_carries_across_runs() {
        let cfg = ServeConfig::new(
            TenantSpec::equal(2),
            ArrivalProcess::Poisson {
                rate_per_sec: 5000.0,
            },
            60,
        );
        let platform = homogeneous(4);
        let model = model();
        let cache = mp_cache::ResultCache::new();
        let cold = serve_sim_cached(
            &platform,
            &model,
            &mut EagerPrioScheduler::new(),
            &cfg,
            Some(&cache),
        );
        // Handle identities are (dense id, size)-derived, so a second
        // engine over the same config re-creates the same keys: every
        // task of the warm run hits and the scheduler is never used.
        let warm = serve_sim_cached(
            &platform,
            &model,
            &mut EagerPrioScheduler::new(),
            &cfg,
            Some(&cache),
        );
        assert!(cold.cache_misses > 0);
        assert!(warm.is_complete());
        assert_eq!(warm.cache_hits, warm.tasks_admitted);
        assert_eq!(warm.cache_misses, 0);
        assert_eq!(warm.decisions, 0);
        // All-hit completions collapse onto arrival instants: the warm
        // makespan is the last arrival, well under the cold makespan's
        // trailing execution.
        assert!(warm.makespan_us <= cold.makespan_us);
    }

    #[test]
    fn mutated_resubmissions_re_execute_their_dirty_cone() {
        let mk = |mf: f64| {
            let mut cfg = ServeConfig::new(
                TenantSpec::equal(2),
                ArrivalProcess::Poisson {
                    rate_per_sec: 5000.0,
                },
                200,
            );
            cfg.subdag.mutation_frac = mf;
            let platform = homogeneous(8);
            let model = model();
            let cache = mp_cache::ResultCache::new();
            serve_sim_cached(
                &platform,
                &model,
                &mut EagerPrioScheduler::new(),
                &cfg,
                Some(&cache),
            )
        };
        let pure = mk(0.0);
        let dirty = mk(0.3);
        assert!(pure.is_complete() && dirty.is_complete());
        // Mutated flops change the fingerprint of the whole sub-DAG
        // (root key, then every in-version downstream), so the dirty
        // stream re-executes more and still serves the rest warm.
        assert!(
            dirty.cache_misses > pure.cache_misses,
            "mutation must add misses: {} vs {}",
            dirty.cache_misses,
            pure.cache_misses
        );
        assert!(dirty.cache_hits > 0, "unmutated arrivals still hit");
        assert_eq!(dirty.decisions, dirty.cache_misses);
        // Repeat-deterministic: the mutation draw is seeded, not random.
        let again = mk(0.3);
        assert_eq!(again.schedule_hash, dirty.schedule_hash);
        assert_eq!(again.cache_misses, dirty.cache_misses);
    }

    #[test]
    fn cache_off_is_bit_identical_to_the_uncached_engine() {
        let cfg = ServeConfig::new(
            TenantSpec::equal(3),
            ArrivalProcess::Bursty {
                rate_per_sec: 20_000.0,
                burst: 8,
            },
            150,
        );
        let platform = homogeneous(4);
        let model = model();
        let a = serve_sim(&platform, &model, &mut EagerPrioScheduler::new(), &cfg);
        let b = serve_sim_cached(
            &platform,
            &model,
            &mut EagerPrioScheduler::new(),
            &cfg,
            None,
        );
        assert_eq!(a.schedule_hash, b.schedule_hash);
        assert_eq!(a.samples_us, b.samples_us);
        assert_eq!(a.makespan_us.to_bits(), b.makespan_us.to_bits());
        assert_eq!(b.cache_hits, 0);
        assert_eq!(b.cache_misses, 0);
    }

    #[test]
    fn per_tenant_counters_land_in_the_snapshot() {
        let cfg = ServeConfig::new(
            TenantSpec::equal(2),
            ArrivalProcess::Poisson {
                rate_per_sec: 5000.0,
            },
            50,
        );
        let r = run(&cfg, 4);
        assert_eq!(r.counters.tenant_admitted.len(), 2);
        assert_eq!(
            r.counters.tenant_admitted.iter().sum::<u64>(),
            r.tasks_admitted
        );
        assert_eq!(
            r.counters.tenant_completed.iter().sum::<u64>(),
            r.tasks_completed
        );
    }
}
