//! Deterministic open-loop arrival processes.
//!
//! Arrival instants are pure functions of `(process, seed, index)` built
//! on the suite's splitmix64 idiom (`mp_fault::unit`) — no wall clock,
//! no shared RNG state — so two drivers with the same configuration
//! produce bit-identical arrival sequences on any machine.

use mp_fault::unit;

/// Salt decorrelating arrival draws from every other consumer of the
/// run seed.
const SALT_ARRIVAL: u64 = 0x5345_5256_4152_5256; // "SERVARRV"

/// An open-loop arrival process over virtual time.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals: i.i.d. exponential gaps with the given mean
    /// rate (submissions per virtual second).
    Poisson {
        /// Mean arrival rate, submissions/s.
        rate_per_sec: f64,
    },
    /// Bursty arrivals: burst epochs are Poisson with rate
    /// `rate_per_sec / burst`, and each epoch releases `burst`
    /// submissions at the same instant — same long-run rate as
    /// `Poisson`, maximally clumped. Exercises admission control and
    /// the latency tail.
    Bursty {
        /// Mean arrival rate, submissions/s (across bursts).
        rate_per_sec: f64,
        /// Submissions released per burst epoch.
        burst: usize,
    },
}

impl ArrivalProcess {
    /// Parse `"poisson:RATE"` or `"bursty:RATE[:BURST]"` (rate in
    /// submissions per second; burst defaults to 8).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut parts = s.split(':');
        let kind = parts.next().unwrap_or("");
        let rate: f64 = parts
            .next()
            .ok_or_else(|| format!("arrival spec '{s}' is missing a rate"))?
            .parse()
            .map_err(|_| format!("arrival spec '{s}' has a non-numeric rate"))?;
        if rate.is_nan() || rate <= 0.0 {
            return Err(format!("arrival spec '{s}' needs a positive rate"));
        }
        match kind {
            "poisson" => Ok(ArrivalProcess::Poisson { rate_per_sec: rate }),
            "bursty" => {
                let burst = match parts.next() {
                    Some(b) => b
                        .parse::<usize>()
                        .ok()
                        .filter(|&b| b >= 1)
                        .ok_or_else(|| format!("arrival spec '{s}' has a bad burst size"))?,
                    None => 8,
                };
                Ok(ArrivalProcess::Bursty {
                    rate_per_sec: rate,
                    burst,
                })
            }
            _ => Err(format!(
                "unknown arrival process '{kind}' (expected poisson|bursty)"
            )),
        }
    }

    /// Canonical spec string (round-trips through [`Self::parse`]).
    pub fn label(&self) -> String {
        match self {
            ArrivalProcess::Poisson { rate_per_sec } => format!("poisson:{rate_per_sec}"),
            ArrivalProcess::Bursty {
                rate_per_sec,
                burst,
            } => format!("bursty:{rate_per_sec}:{burst}"),
        }
    }

    /// The first `n` arrival instants in virtual µs, strictly
    /// non-decreasing, deterministic in `(self, seed)`.
    pub fn times_us(&self, n: usize, seed: u64) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => {
                let rate_us = rate_per_sec / 1e6;
                let mut t = 0.0;
                for k in 0..n {
                    t += exp_gap(seed, k as u64, rate_us);
                    out.push(t);
                }
            }
            ArrivalProcess::Bursty {
                rate_per_sec,
                burst,
            } => {
                let epoch_rate_us = rate_per_sec / 1e6 / burst as f64;
                let mut t = 0.0;
                let mut k = 0u64;
                while out.len() < n {
                    t += exp_gap(seed, k, epoch_rate_us);
                    k += 1;
                    for _ in 0..burst.min(n - out.len()) {
                        out.push(t);
                    }
                }
            }
        }
        out
    }
}

/// One exponential inter-arrival gap in µs (inverse-CDF sampling of the
/// splitmix-derived uniform).
fn exp_gap(seed: u64, k: u64, rate_us: f64) -> f64 {
    let u = unit(seed, k, SALT_ARRIVAL);
    -(1.0 - u).ln() / rate_us
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for s in ["poisson:800", "bursty:500:16"] {
            let p = ArrivalProcess::parse(s).unwrap();
            assert_eq!(p.label(), s);
        }
        assert_eq!(
            ArrivalProcess::parse("bursty:100").unwrap(),
            ArrivalProcess::Bursty {
                rate_per_sec: 100.0,
                burst: 8
            }
        );
        assert!(ArrivalProcess::parse("uniform:1").is_err());
        assert!(ArrivalProcess::parse("poisson:-3").is_err());
        assert!(ArrivalProcess::parse("poisson").is_err());
        assert!(ArrivalProcess::parse("bursty:10:0").is_err());
    }

    #[test]
    fn poisson_times_are_deterministic_and_rate_plausible() {
        let p = ArrivalProcess::Poisson {
            rate_per_sec: 1000.0,
        };
        let a = p.times_us(4000, 42);
        let b = p.times_us(4000, 42);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        // Mean gap should be within 10% of 1/rate = 1000 µs.
        let mean_gap = a.last().unwrap() / a.len() as f64;
        assert!((mean_gap - 1000.0).abs() < 100.0, "mean gap {mean_gap}");
        // A different seed must give a different sequence.
        assert_ne!(a, p.times_us(4000, 43));
    }

    #[test]
    fn bursty_clumps_but_keeps_the_rate() {
        let p = ArrivalProcess::Bursty {
            rate_per_sec: 1000.0,
            burst: 10,
        };
        let a = p.times_us(4000, 42);
        // Bursts share an instant.
        assert_eq!(a[0], a[9]);
        assert!(a[10] > a[9]);
        let mean_gap = a.last().unwrap() / a.len() as f64;
        assert!((mean_gap - 1000.0).abs() < 150.0, "mean gap {mean_gap}");
    }
}
