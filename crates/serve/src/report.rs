//! Serving-run reports: throughput, latency distributions, fairness.

use std::sync::OnceLock;

use mp_trace::{CounterSnapshot, LatencyStats};

use crate::engine::ServeError;

/// Per-tenant outcome of a serving run.
#[derive(Clone, Debug, Default)]
pub struct TenantStats {
    /// Tenant display name.
    pub name: String,
    /// Fair-share weight the run used.
    pub weight: f64,
    /// Whole sub-DAG submissions admitted / rejected.
    pub subdags_admitted: u64,
    /// Submissions rejected with backpressure.
    pub subdags_rejected: u64,
    /// Tasks admitted (sum over admitted sub-DAGs).
    pub tasks_admitted: u64,
    /// Tasks that completed execution.
    pub tasks_completed: u64,
    /// Completions served from the result cache (a subset of
    /// `tasks_completed`): the task never entered the scheduler and
    /// contributes no latency sample.
    pub cache_hits: u64,
    /// Scheduling latency (ready → popped) of this tenant's tasks.
    pub latency: LatencyStats,
}

/// Everything one serving run produces.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Scheduler policy name.
    pub scheduler: String,
    /// Worker count of the platform.
    pub workers: usize,
    /// Arrival process spec (`ArrivalProcess::label`).
    pub arrivals: String,
    /// Virtual time when the last task completed (µs).
    pub makespan_us: f64,
    /// Scheduling decisions made (successful pops).
    pub decisions: u64,
    /// Tasks admitted across all tenants.
    pub tasks_admitted: u64,
    /// Tasks completed (equals admitted on a clean run).
    pub tasks_completed: u64,
    /// Completions served straight from the result cache across all
    /// tenants — never pushed, popped or estimated. Always 0 with
    /// caching off.
    pub cache_hits: u64,
    /// Cache probes that missed (or were invalidated) and executed
    /// normally. Always 0 with caching off.
    pub cache_misses: u64,
    /// Whole sub-DAG submissions admitted / rejected.
    pub subdags_admitted: u64,
    /// Submissions rejected with typed backpressure.
    pub subdags_rejected: u64,
    /// Scheduling latency over every admitted task: the virtual-time
    /// span from a task becoming ready (all predecessors done) to the
    /// scheduler handing it to a worker.
    pub latency: LatencyStats,
    /// Every latency sample in µs, completion order — exact percentile
    /// computation and bit-exact repeat comparison.
    pub samples_us: Vec<u64>,
    /// Per-tenant breakdown (fairness accounting).
    pub tenants: Vec<TenantStats>,
    /// Scheduler/engine counters, including the per-tenant
    /// admitted/rejected/completed task counts.
    pub counters: CounterSnapshot,
    /// FNV-1a over the (task, worker, start-time) decision sequence —
    /// the determinism fingerprint of the whole schedule.
    pub schedule_hash: u64,
    /// Why the run stopped early, if it did.
    pub error: Option<ServeError>,
    /// Sorted copy of `samples_us`, built once on the first percentile
    /// query and reused by every later one (a report is read many
    /// times; `samples_us` itself stays in completion order for
    /// bit-exact repeat comparison).
    pub(crate) sorted: OnceLock<Vec<u64>>,
}

impl ServeReport {
    /// Did every admitted task complete?
    pub fn is_complete(&self) -> bool {
        self.error.is_none() && self.tasks_completed == self.tasks_admitted
    }

    /// Sustained scheduling throughput in decisions per virtual second.
    pub fn decisions_per_sec(&self) -> f64 {
        if self.makespan_us <= 0.0 {
            return 0.0;
        }
        self.decisions as f64 / (self.makespan_us / 1e6)
    }

    /// Exact latency percentile (nearest-rank) in µs; 0 when empty.
    pub fn percentile_us(&self, q: f64) -> u64 {
        if self.samples_us.is_empty() {
            return 0;
        }
        let sorted = self.sorted.get_or_init(|| {
            let mut s = self.samples_us.clone();
            s.sort_unstable();
            s
        });
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Median scheduling latency in µs.
    pub fn p50_us(&self) -> u64 {
        self.percentile_us(0.50)
    }

    /// Tail scheduling latency in µs.
    pub fn p99_us(&self) -> u64 {
        self.percentile_us(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> ServeReport {
        ServeReport {
            scheduler: "x".into(),
            workers: 0,
            arrivals: "poisson:1".into(),
            makespan_us: 0.0,
            decisions: 0,
            tasks_admitted: 0,
            tasks_completed: 0,
            cache_hits: 0,
            cache_misses: 0,
            subdags_admitted: 0,
            subdags_rejected: 0,
            latency: LatencyStats::default(),
            samples_us: Vec::new(),
            tenants: Vec::new(),
            counters: CounterSnapshot::default(),
            schedule_hash: 0,
            error: None,
            sorted: OnceLock::new(),
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut r = empty_report();
        r.samples_us = (1..=100).rev().collect();
        assert_eq!(r.p50_us(), 50);
        assert_eq!(r.p99_us(), 99);
        assert_eq!(r.percentile_us(1.0), 100);
        assert_eq!(empty_report().p99_us(), 0);
    }

    #[test]
    fn percentiles_sort_once_and_leave_samples_untouched() {
        let mut r = empty_report();
        r.samples_us = vec![30, 10, 50, 20, 40];
        // Repeated and interleaved queries agree with nearest-rank over
        // a fresh sort every time...
        for _ in 0..3 {
            assert_eq!(r.p50_us(), 30);
            assert_eq!(r.percentile_us(0.2), 10);
            assert_eq!(r.percentile_us(1.0), 50);
        }
        // ...while the raw sample order (the repeat-comparison surface)
        // is untouched and exactly one sorted copy exists.
        assert_eq!(r.samples_us, vec![30, 10, 50, 20, 40]);
        assert_eq!(r.sorted.get().unwrap(), &vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn throughput_guards_zero_makespan() {
        let mut r = empty_report();
        assert_eq!(r.decisions_per_sec(), 0.0);
        r.decisions = 500;
        r.makespan_us = 2e6;
        assert!((r.decisions_per_sec() - 250.0).abs() < 1e-9);
    }
}
