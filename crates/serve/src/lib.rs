//! # mp-serve — online multi-tenant streaming STF serving mode
//!
//! The batch engines (`mp-sim`, `mp-runtime`) take one closed DAG and
//! run it to completion. This crate adds the *serving* shape of the same
//! problem (DESIGN.md §13): tasks stream in continuously from many
//! concurrent clients as independent sub-DAGs, and the system must keep
//! scheduling while the graph is still growing. It provides:
//!
//! * **tenants** — per-client weight and base priority; the fairness
//!   layer scales a task's priority score by its tenant's weight before
//!   the scheduler buckets it, with starvation aging on top
//!   ([`effective_priority`]);
//! * **admission control** — bounded in-flight work with typed
//!   backpressure rejections ([`AdmitError::Backpressure`]), decided
//!   deterministically in virtual time;
//! * **arrival processes** — deterministic open-loop Poisson and bursty
//!   drivers built on the suite's splitmix64 idiom; no wall clock
//!   anywhere ([`ArrivalProcess`]);
//! * **a virtual-time serving engine** — [`serve_sim`] ingests staged
//!   sub-DAGs through [`mp_dag::SubmissionStage`] (cross-submission
//!   dependencies resolve by data identity), drives any sequential
//!   [`mp_sched::Scheduler`], and reports sustained decision throughput
//!   and per-tenant scheduling-latency distributions, bit-identically
//!   across repeats;
//! * **warm serving** — [`serve_sim_cached`] layers a shared
//!   [`mp_cache::ResultCache`] under the same engine: released tasks
//!   probe the cache before the scheduler ever sees them, verified hits
//!   complete at the release instant (cascading through all-hit
//!   successors), and hit counts land per tenant in
//!   [`TenantStats::cache_hits`]. A resubmitted near-identical sub-DAG
//!   re-executes only its dirty cone.
//!
//! The threaded counterpart (`mp_runtime::Runtime::serve`) reuses the
//! tenant/admission/arrival vocabulary defined here and executes real
//! kernels; there, determinism is not required — correctness
//! (exactly-once, per-sub-DAG precedence) is audited instead.

pub mod admission;
pub mod arrival;
pub mod engine;
pub mod report;
pub mod tenant;

pub use admission::{AdmissionConfig, AdmitError};
pub use arrival::ArrivalProcess;
pub use engine::{serve_sim, serve_sim_cached, ServeConfig, ServeError, SubDagShape};
pub use report::{ServeReport, TenantStats};
pub use tenant::{effective_priority, FairnessConfig, TenantSpec};
