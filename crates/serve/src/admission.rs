//! Admission control: bounded in-flight work with typed backpressure.
//!
//! The serving mode is **open-loop**: arrivals keep coming whether or
//! not the system keeps up. The admission controller bounds the damage
//! with a high-water mark on in-flight (admitted but not completed)
//! tasks — globally and optionally per tenant. A submission that would
//! overflow either bound is rejected *whole* with a typed error; its
//! staged sub-DAG is discarded before touching the graph
//! ([`mp_dag::SubmissionStage`] drop semantics), so a rejection can
//! never strand a dependency of something already admitted. Decisions
//! use only counters of virtual-time state, so under `serve_sim` the
//! accept/reject sequence is bit-deterministic.

use std::fmt;

/// Bounds enforced at admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// High-water mark on in-flight tasks across all tenants. A
    /// submission is rejected when admitting it would push the total
    /// past this bound.
    pub max_in_flight: usize,
    /// Optional per-tenant in-flight bound (a tenant's private queue
    /// depth); `None` disables the per-tenant check.
    pub max_tenant_in_flight: Option<usize>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_in_flight: 4096,
            max_tenant_in_flight: None,
        }
    }
}

impl AdmissionConfig {
    /// Decide one submission of `staged` tasks for `tenant`, given the
    /// current global and per-tenant in-flight counts.
    pub fn check(
        &self,
        tenant: usize,
        staged: usize,
        in_flight: usize,
        tenant_in_flight: usize,
    ) -> Result<(), AdmitError> {
        if in_flight + staged > self.max_in_flight {
            return Err(AdmitError::Backpressure {
                tenant,
                staged,
                in_flight,
                high_water: self.max_in_flight,
            });
        }
        if let Some(cap) = self.max_tenant_in_flight {
            if tenant_in_flight + staged > cap {
                return Err(AdmitError::TenantBackpressure {
                    tenant,
                    staged,
                    tenant_in_flight,
                    high_water: cap,
                });
            }
        }
        Ok(())
    }
}

/// Why a submission was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The global in-flight high-water mark would be exceeded.
    Backpressure {
        /// Submitting tenant.
        tenant: usize,
        /// Tasks in the rejected sub-DAG.
        staged: usize,
        /// In-flight tasks at decision time.
        in_flight: usize,
        /// The configured global bound.
        high_water: usize,
    },
    /// The tenant's own in-flight bound would be exceeded.
    TenantBackpressure {
        /// Submitting tenant.
        tenant: usize,
        /// Tasks in the rejected sub-DAG.
        staged: usize,
        /// The tenant's in-flight tasks at decision time.
        tenant_in_flight: usize,
        /// The configured per-tenant bound.
        high_water: usize,
    },
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::Backpressure {
                tenant,
                staged,
                in_flight,
                high_water,
            } => write!(
                f,
                "backpressure: tenant {tenant} submission of {staged} task(s) rejected \
                 ({in_flight} in flight, high-water {high_water})"
            ),
            AdmitError::TenantBackpressure {
                tenant,
                staged,
                tenant_in_flight,
                high_water,
            } => write!(
                f,
                "tenant backpressure: tenant {tenant} submission of {staged} task(s) rejected \
                 ({tenant_in_flight} of its tasks in flight, per-tenant high-water {high_water})"
            ),
        }
    }
}

impl std::error::Error for AdmitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_high_water_rejects_whole_submissions() {
        let cfg = AdmissionConfig {
            max_in_flight: 10,
            max_tenant_in_flight: None,
        };
        assert!(cfg.check(0, 4, 6, 6).is_ok());
        let err = cfg.check(1, 5, 6, 0).unwrap_err();
        assert_eq!(
            err,
            AdmitError::Backpressure {
                tenant: 1,
                staged: 5,
                in_flight: 6,
                high_water: 10
            }
        );
        assert!(err.to_string().contains("high-water 10"));
    }

    #[test]
    fn per_tenant_bound_is_independent_of_global() {
        let cfg = AdmissionConfig {
            max_in_flight: 100,
            max_tenant_in_flight: Some(3),
        };
        assert!(cfg.check(0, 3, 50, 0).is_ok());
        assert!(matches!(
            cfg.check(0, 2, 50, 2),
            Err(AdmitError::TenantBackpressure { high_water: 3, .. })
        ));
    }
}
