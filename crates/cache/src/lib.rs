//! # mp-cache — content-addressed result memoization
//!
//! Production DAG services re-run near-identical subgraphs constantly.
//! This crate provides the shared store both engines consult before
//! executing a task: entries are keyed by the STF builder's
//! content-address key (`(task type, flops, access modes, input data
//! versions)` folded through FNV-1a — see [`mp_dag::CacheMeta`]), so a
//! hit means "this exact computation over these exact input versions
//! already ran" and execution can be skipped outright.
//!
//! Design points (DESIGN.md §12):
//!
//! * **Verified lookups.** The 64-bit key alone is not trusted: every
//!   entry stores the full canonical fingerprint it was inserted under,
//!   and [`ResultCache::lookup`] compares it word-for-word. A mismatch
//!   (hash collision, poisoned or stale entry) evicts the entry and
//!   reports [`Lookup::Invalidated`] — the caller treats it as a miss
//!   and recomputes. The cache can serve wrong-speed, never wrong-data.
//! * **Engine-agnostic payloads.** The threaded runtime stores the
//!   written buffers (`payload`) so a hit can materialize real bytes;
//!   the simulator stores `None` (virtual time has no payload) and a
//!   payload-requiring lookup of such an entry misses.
//! * **Incremental re-execution.** Keys propagate through data versions:
//!   mutate one task and every transitive consumer re-keys (the *dirty
//!   cone*) while the rest of the DAG still hits. [`resubmit_with_mutation`]
//!   builds that scenario deterministically and [`changed_tasks`]
//!   computes the exact expected cone for assertions.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use mp_dag::graph::CacheMeta;
use mp_dag::{AccessMode, StfBuilder, TaskGraph, TaskId};

/// One memoized result: the fingerprint it was stored under, the data
/// versions of its outputs, and (runtime only) the written buffers.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// Canonical fingerprint words — verified on every lookup.
    pub fingerprint: Vec<u64>,
    /// Version assigned to each written handle, in access order.
    pub out_versions: Vec<u64>,
    /// Written buffers in access order (`None` for sim-populated
    /// entries, which carry no payload).
    pub payload: Option<Vec<Vec<f64>>>,
    /// Total bytes this entry materializes on a hit.
    pub bytes: u64,
}

/// Outcome of a cache probe.
#[derive(Clone, Debug)]
pub enum Lookup {
    /// Verified entry — skip execution and materialize.
    Hit(Arc<CacheEntry>),
    /// An entry existed under this key but its fingerprint did not
    /// match (collision / poison / stale): it was evicted. Recompute.
    Invalidated,
    /// Nothing stored under this key (or no payload where one is
    /// required). Execute and populate.
    Miss,
}

/// Thread-safe content-addressed result store, shared across runs (and
/// across engines) via `Arc`.
#[derive(Default, Debug)]
pub struct ResultCache {
    inner: Mutex<HashMap<u64, Arc<CacheEntry>>>,
}

impl ResultCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Probe for `meta.key`, verifying the stored fingerprint. With
    /// `need_payload` (the threaded runtime), payload-less entries are
    /// misses — the sim and the runtime can share one cache without the
    /// runtime ever "hitting" an entry it cannot materialize.
    pub fn lookup(&self, meta: &CacheMeta, need_payload: bool) -> Lookup {
        let mut map = self.inner.lock().unwrap();
        let Some(entry) = map.get(&meta.key) else {
            return Lookup::Miss;
        };
        if entry.fingerprint != meta.fingerprint {
            map.remove(&meta.key);
            return Lookup::Invalidated;
        }
        if need_payload && entry.payload.is_none() {
            return Lookup::Miss;
        }
        Lookup::Hit(Arc::clone(entry))
    }

    /// Store (or replace) the entry for `meta.key`.
    pub fn insert(&self, meta: &CacheMeta, payload: Option<Vec<Vec<f64>>>, bytes: u64) {
        let entry = Arc::new(CacheEntry {
            fingerprint: meta.fingerprint.clone(),
            out_versions: meta.out_versions.clone(),
            payload,
            bytes,
        });
        self.inner.lock().unwrap().insert(meta.key, entry);
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry.
    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
    }

    /// Corrupt the stored fingerprint under `key` (fault-injection hook
    /// for tests): the next lookup must detect the mismatch and report
    /// [`Lookup::Invalidated`], never serve the entry. Returns `false`
    /// if no entry exists under `key`.
    pub fn poison(&self, key: u64) -> bool {
        let mut map = self.inner.lock().unwrap();
        match map.get_mut(&key) {
            Some(slot) => {
                let mut e = (**slot).clone();
                match e.fingerprint.first_mut() {
                    Some(w) => *w ^= 1,
                    None => e.fingerprint.push(0xdead),
                }
                *slot = Arc::new(e);
                true
            }
            None => false,
        }
    }
}

/// Rebuild `graph` through a fresh [`StfBuilder`], perturbing the flops
/// of a deterministic ~`frac` fraction of tasks (selected by
/// `mp_fault::unit(seed, task, 0xCACE)`). Task/data/type ids are
/// preserved by construction, so the result is "the same program with a
/// few edited tasks" — the incremental-re-execution scenario. Cache
/// keys are re-derived during the rebuild, which re-versions every
/// mutated task's write cone.
pub fn resubmit_with_mutation(graph: &TaskGraph, frac: f64, seed: u64) -> TaskGraph {
    let mut stf = StfBuilder::new();
    for ty in graph.types() {
        stf.graph_mut()
            .register_type(&ty.name, ty.cpu_impl, ty.gpu_impl);
    }
    for d in graph.data() {
        stf.graph_mut().add_data(d.size, d.label.clone());
    }
    for task in graph.tasks() {
        let accesses: Vec<(mp_dag::DataId, AccessMode)> =
            task.accesses.iter().map(|a| (a.data, a.mode)).collect();
        let mutate = frac > 0.0 && mp_fault::unit(seed, task.id.index() as u64, 0xCACE) < frac;
        let flops = if mutate {
            task.flops * 1.0625 + 1.0
        } else {
            task.flops
        };
        let t = stf.submit_prio(task.ttype, accesses, flops, task.user_priority, &task.label);
        debug_assert_eq!(t, task.id);
    }
    stf.finish()
}

/// Tasks whose cache key differs between two id-aligned graphs — the
/// exact set a warm re-run of `new` must re-execute after `old`
/// populated the cache (mutated tasks plus their transitive consumers).
/// Tasks without metadata in either graph are counted as changed (they
/// can never hit).
pub fn changed_tasks(old: &TaskGraph, new: &TaskGraph) -> Vec<TaskId> {
    assert_eq!(old.task_count(), new.task_count(), "graphs must id-align");
    (0..new.task_count())
        .map(TaskId::from_index)
        .filter(|&t| match (old.cache_meta(t), new.cache_meta(t)) {
            (Some(a), Some(b)) => a.key != b.key,
            _ => true,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(flops0: f64) -> TaskGraph {
        let mut stf = StfBuilder::new();
        let k = stf.graph_mut().register_type("K", true, true);
        let a = stf.graph_mut().add_data(64, "a");
        let b = stf.graph_mut().add_data(64, "b");
        stf.submit(k, vec![(a, AccessMode::Write)], flops0, "t0");
        stf.submit(
            k,
            vec![(a, AccessMode::Read), (b, AccessMode::Write)],
            2.0,
            "t1",
        );
        stf.submit(k, vec![(b, AccessMode::ReadWrite)], 3.0, "t2");
        stf.finish()
    }

    fn meta(g: &TaskGraph, i: usize) -> &CacheMeta {
        g.cache_meta(TaskId::from_index(i)).unwrap()
    }

    #[test]
    fn miss_then_hit_roundtrip() {
        let g = chain(1.0);
        let cache = ResultCache::new();
        let m = meta(&g, 0);
        assert!(matches!(cache.lookup(m, false), Lookup::Miss));
        cache.insert(m, None, 64);
        match cache.lookup(m, false) {
            Lookup::Hit(e) => {
                assert_eq!(e.out_versions, m.out_versions);
                assert_eq!(e.bytes, 64);
            }
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn payload_requirement_misses_simulator_entries() {
        let g = chain(1.0);
        let cache = ResultCache::new();
        cache.insert(meta(&g, 0), None, 64);
        assert!(matches!(cache.lookup(meta(&g, 0), true), Lookup::Miss));
        cache.insert(meta(&g, 0), Some(vec![vec![1.0; 8]]), 64);
        assert!(matches!(cache.lookup(meta(&g, 0), true), Lookup::Hit(_)));
    }

    #[test]
    fn poisoned_entry_is_invalidated_never_served() {
        let g = chain(1.0);
        let cache = ResultCache::new();
        let m = meta(&g, 0);
        cache.insert(m, None, 64);
        assert!(cache.poison(m.key));
        assert!(matches!(cache.lookup(m, false), Lookup::Invalidated));
        // The corrupt entry was evicted: the key is free again.
        assert!(matches!(cache.lookup(m, false), Lookup::Miss));
        assert!(cache.is_empty());
    }

    #[test]
    fn stale_version_is_a_miss_not_wrong_data() {
        // Same key slot, different input version (fingerprint differs):
        // must invalidate, never return the old entry.
        let g0 = chain(1.0);
        let cache = ResultCache::new();
        cache.insert(meta(&g0, 1), None, 64);
        let mut stale = meta(&g0, 1).clone();
        // Fake a re-keyed consumer that (improbably) landed on the same
        // key: fingerprint comparison still catches it.
        stale.fingerprint[1] ^= 0xff;
        assert!(matches!(cache.lookup(&stale, false), Lookup::Invalidated));
    }

    #[test]
    fn mutation_rebuild_preserves_structure_and_marks_cone() {
        let g = chain(1.0);
        let same = resubmit_with_mutation(&g, 0.0, 42);
        assert!(changed_tasks(&g, &same).is_empty());
        assert_eq!(g.edge_count(), same.edge_count());

        // Mutate everything: every key must change.
        let all = resubmit_with_mutation(&g, 1.1, 42);
        assert_eq!(changed_tasks(&g, &all).len(), g.task_count());
    }

    #[test]
    fn dirty_cone_is_transitively_closed() {
        let g = chain(1.0);
        // Hand-mutate t0 only: t0, t1 (reads a), t2 (reads b) all re-key.
        let mut stf = StfBuilder::new();
        let k = stf.graph_mut().register_type("K", true, true);
        let a = stf.graph_mut().add_data(64, "a");
        let b = stf.graph_mut().add_data(64, "b");
        stf.submit(k, vec![(a, AccessMode::Write)], 9.0, "t0");
        stf.submit(
            k,
            vec![(a, AccessMode::Read), (b, AccessMode::Write)],
            2.0,
            "t1",
        );
        stf.submit(k, vec![(b, AccessMode::ReadWrite)], 3.0, "t2");
        let edited = stf.finish();
        let cone = changed_tasks(&g, &edited);
        assert_eq!(cone.len(), 3, "whole cone of t0 is dirty: {cone:?}");

        // Sanity: the cone respects reachability — every dirty task is
        // t0 or a transitive successor of a dirty task.
        for &t in &cone {
            assert!(
                t == TaskId(0) || g.preds(t).iter().any(|p| cone.contains(p)),
                "{t:?} dirty without a dirty predecessor"
            );
        }
    }
}
