//! # mp-cache — content-addressed result memoization
//!
//! Production DAG services re-run near-identical subgraphs constantly.
//! This crate provides the shared store both engines consult before
//! executing a task: entries are keyed by the STF builder's
//! content-address key (`(task type, flops, access modes, input data
//! versions)` folded through FNV-1a — see [`mp_dag::CacheMeta`]), so a
//! hit means "this exact computation over these exact input versions
//! already ran" and execution can be skipped outright.
//!
//! Design points (DESIGN.md §12):
//!
//! * **Verified lookups.** The 64-bit key alone is not trusted: every
//!   entry stores the full canonical fingerprint it was inserted under,
//!   and [`ResultCache::lookup`] compares it word-for-word. A mismatch
//!   (hash collision, poisoned or stale entry) evicts the entry and
//!   reports [`Lookup::Invalidated`] — the caller treats it as a miss
//!   and recomputes. The cache can serve wrong-speed, never wrong-data.
//! * **Engine-agnostic payloads.** The threaded runtime stores the
//!   written buffers (`payload`) so a hit can materialize real bytes;
//!   the simulator stores `None` (virtual time has no payload) and a
//!   payload-requiring lookup of such an entry misses.
//! * **Incremental re-execution.** Keys propagate through data versions:
//!   mutate one task and every transitive consumer re-keys (the *dirty
//!   cone*) while the rest of the DAG still hits. [`resubmit_with_mutation`]
//!   builds that scenario deterministically and [`changed_tasks`]
//!   computes the exact expected cone for assertions.
//! * **Bounded residency.** A long-lived serving process would otherwise
//!   leak payload bytes forever. [`ResultCache::with_capacity`] installs
//!   a byte cap with LRU eviction: every entry is charged its payload
//!   bytes plus a fixed bookkeeping overhead, lookups refresh recency,
//!   and inserts evict the least-recently-used entries until the cap
//!   holds again. Eviction only ever costs a recompute (the next lookup
//!   of an evicted key is a plain miss), never correctness.
//! * **Crash-safe persistence.** [`ResultCache::persist_to`] attaches a
//!   checksummed append-only segment log so inserts stream to disk, and
//!   [`ResultCache::open`] replays it after a restart (DESIGN.md §14).
//!   Recovery is paranoid: torn tails, truncated segments, flipped bits
//!   and forged records are skipped and counted ([`LoadReport`]) — a
//!   corrupt store degrades to a cold cache, never to wrong data — and
//!   loaded entries still pass the fingerprint verification on lookup.
//!   [`PersistFaultPlan`] injects deterministic kill/flush-drop/bit-flip
//!   faults for the chaos suites.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use mp_dag::graph::CacheMeta;
use mp_dag::{AccessMode, StfBuilder, TaskGraph, TaskId};

pub mod persist;

pub use persist::{BitFlip, LoadReport, PersistConfig, PersistFaultPlan, PersistStats};

/// One memoized result: the fingerprint it was stored under, the data
/// versions of its outputs, and (runtime only) the written buffers.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// Canonical fingerprint words — verified on every lookup.
    pub fingerprint: Vec<u64>,
    /// Version assigned to each written handle, in access order.
    pub out_versions: Vec<u64>,
    /// Written buffers in access order (`None` for sim-populated
    /// entries, which carry no payload).
    pub payload: Option<Vec<Vec<f64>>>,
    /// Total bytes this entry materializes on a hit.
    pub bytes: u64,
}

/// Outcome of a cache probe.
#[derive(Clone, Debug)]
pub enum Lookup {
    /// Verified entry — skip execution and materialize.
    Hit(Arc<CacheEntry>),
    /// An entry existed under this key but its fingerprint did not
    /// match (collision / poison / stale): it was evicted. Recompute.
    Invalidated,
    /// Nothing stored under this key (or no payload where one is
    /// required). Execute and populate.
    Miss,
}

/// Fixed per-entry residency charge on top of the payload bytes:
/// fingerprint words, out-versions, map/recency bookkeeping. Charging it
/// keeps even payload-less (simulator) entries bounded under a cap.
pub const ENTRY_OVERHEAD_BYTES: u64 = 64;

/// One resident entry plus its recency stamp (key into `order`).
#[derive(Debug)]
struct Slot {
    entry: Arc<CacheEntry>,
    stamp: u64,
}

/// State behind the cache lock. `order` maps recency stamps (monotonic,
/// unique) to keys: the first entry is always the least recently used.
#[derive(Default, Debug)]
struct CacheState {
    map: HashMap<u64, Slot>,
    order: BTreeMap<u64, u64>,
    next_stamp: u64,
    used_bytes: u64,
    evictions: u64,
}

impl CacheState {
    fn fresh_stamp(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }

    /// Detach `key` from both indexes, returning its charge.
    fn remove(&mut self, key: u64) -> Option<Arc<CacheEntry>> {
        let slot = self.map.remove(&key)?;
        self.order.remove(&slot.stamp);
        self.used_bytes -= charge(&slot.entry);
        Some(slot.entry)
    }

    /// Evict least-recently-used entries until `used_bytes <= cap`.
    fn evict_to(&mut self, cap: u64) {
        while self.used_bytes > cap {
            let Some((_, &key)) = self.order.iter().next() else {
                break;
            };
            self.remove(key);
            self.evictions += 1;
        }
    }
}

/// Residency charge of one entry: payload bytes (when a payload is
/// resident) plus the *actual* fingerprint and out-version words, plus
/// the fixed bookkeeping overhead. Charging the real word counts keeps
/// the byte-capacity LRU honest — a long-fingerprint entry cannot
/// squat under a flat per-entry guess.
fn charge(entry: &CacheEntry) -> u64 {
    let payload = if entry.payload.is_some() {
        entry.bytes
    } else {
        0
    };
    let words = (entry.fingerprint.len() + entry.out_versions.len()) as u64;
    payload + words * 8 + ENTRY_OVERHEAD_BYTES
}

/// Thread-safe content-addressed result store, shared across runs (and
/// across engines) via `Arc`. Unbounded by default; see
/// [`ResultCache::with_capacity`].
#[derive(Default, Debug)]
pub struct ResultCache {
    inner: Mutex<CacheState>,
    capacity: Option<u64>,
    /// Segment-log writer, when persistence is attached. A separate
    /// lock from `inner` so disk IO never serializes lookups; the only
    /// nesting is log → state (never the reverse), so the pair cannot
    /// deadlock.
    log: Mutex<Option<persist::SegmentWriter>>,
    /// Lifetime persistence counters (see [`PersistStats`]).
    pstats: persist::PersistCounters,
    /// Report of the replay that opened this cache, if any.
    last_load: Mutex<Option<LoadReport>>,
}

impl ResultCache {
    /// Empty cache without a residency bound (test/batch use; serving
    /// processes should prefer [`Self::with_capacity`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty cache bounded to `capacity_bytes` of resident charge
    /// (payload bytes + [`ENTRY_OVERHEAD_BYTES`] per entry), enforced by
    /// LRU eviction at insert time. An entry whose own charge exceeds
    /// the cap is not stored at all (counted as an eviction) — the
    /// invariant `used_bytes() <= capacity` holds at every return.
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        Self {
            capacity: Some(capacity_bytes),
            ..Self::default()
        }
    }

    /// Lock the cache state, recovering from poisoning. A worker that
    /// panics mid-`insert` (e.g. a `KernelPanicked` kernel whose payload
    /// clone trips a debug assertion) poisons the mutex; every cache
    /// operation is written so the state stays consistent at any
    /// unwind point (stamps are allocated before indexes are linked),
    /// so the worst a recovered guard can observe is a missing or
    /// stale entry — a recompute, never wrong data. Wedging every
    /// later lookup behind an `unwrap` panic would turn one dead
    /// worker into a dead serving process.
    fn state(&self) -> MutexGuard<'_, CacheState> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Probe for `meta.key`, verifying the stored fingerprint. With
    /// `need_payload` (the threaded runtime), payload-less entries are
    /// misses — the sim and the runtime can share one cache without the
    /// runtime ever "hitting" an entry it cannot materialize. A hit
    /// refreshes the entry's LRU recency.
    pub fn lookup(&self, meta: &CacheMeta, need_payload: bool) -> Lookup {
        let mut st = self.state();
        let Some(slot) = st.map.get(&meta.key) else {
            return Lookup::Miss;
        };
        if slot.entry.fingerprint != meta.fingerprint {
            st.remove(meta.key);
            return Lookup::Invalidated;
        }
        if need_payload && slot.entry.payload.is_none() {
            return Lookup::Miss;
        }
        let entry = Arc::clone(&slot.entry);
        let old_stamp = slot.stamp;
        let stamp = st.fresh_stamp();
        st.order.remove(&old_stamp);
        st.order.insert(stamp, meta.key);
        st.map.get_mut(&meta.key).unwrap().stamp = stamp;
        Lookup::Hit(entry)
    }

    /// Store (or replace) the entry for `meta.key`, evicting
    /// least-recently-used entries past the capacity. With persistence
    /// attached ([`Self::persist_to`]) the record streams to the
    /// segment log before entering the in-memory store.
    pub fn insert(&self, meta: &CacheMeta, payload: Option<Vec<Vec<f64>>>, bytes: u64) {
        let entry = Arc::new(CacheEntry {
            fingerprint: meta.fingerprint.clone(),
            out_versions: meta.out_versions.clone(),
            payload,
            bytes,
        });
        if let Some(cap) = self.capacity {
            if charge(&entry) > cap {
                // Refused outright: neither stored nor persisted (a
                // reload would just refuse it again).
                self.state().evictions += 1;
                return;
            }
        }
        self.persist_entry(meta.key, &entry);
        self.store_entry(meta.key, entry);
    }

    /// Append one entry to the segment log, when a live writer is
    /// attached. Never takes the state lock.
    fn persist_entry(&self, key: u64, entry: &Arc<CacheEntry>) {
        let mut log = self.log.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(w) = log.as_mut() {
            if w.append(key, entry) {
                self.pstats.writes.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Link `entry` into the in-memory indexes (shared by [`Self::insert`]
    /// and segment replay, which must not re-persist what it loads).
    fn store_entry(&self, key: u64, entry: Arc<CacheEntry>) {
        let cost = charge(&entry);
        let mut st = self.state();
        st.remove(key);
        if let Some(cap) = self.capacity {
            if cost > cap {
                st.evictions += 1;
                return;
            }
        }
        let stamp = st.fresh_stamp();
        st.order.insert(stamp, key);
        st.map.insert(key, Slot { entry, stamp });
        st.used_bytes += cost;
        if let Some(cap) = self.capacity {
            st.evict_to(cap);
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.state().map.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident charge in bytes (payload + per-entry overhead). Always
    /// `<=` the configured capacity, when one is set.
    pub fn used_bytes(&self) -> u64 {
        self.state().used_bytes
    }

    /// Configured byte capacity, `None` when unbounded.
    pub fn capacity_bytes(&self) -> Option<u64> {
        self.capacity
    }

    /// Entries evicted (or refused) by the capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.state().evictions
    }

    /// Drop every entry (capacity and eviction count are kept).
    pub fn clear(&self) {
        let mut st = self.state();
        st.map.clear();
        st.order.clear();
        st.used_bytes = 0;
    }

    /// Corrupt the stored fingerprint under `key` (fault-injection hook
    /// for tests): the next lookup must detect the mismatch and report
    /// [`Lookup::Invalidated`], never serve the entry. Returns `false`
    /// if no entry exists under `key`.
    pub fn poison(&self, key: u64) -> bool {
        let mut st = self.state();
        match st.map.get_mut(&key) {
            Some(slot) => {
                let mut e = (*slot.entry).clone();
                match e.fingerprint.first_mut() {
                    Some(w) => *w ^= 1,
                    None => e.fingerprint.push(0xdead),
                }
                slot.entry = Arc::new(e);
                true
            }
            None => false,
        }
    }

    /// Attach crash-safe persistence with default settings: every
    /// insert streams to an append-only segment log in `dir` (created
    /// if missing), and the current in-memory contents are snapshotted
    /// into it immediately. See [`Self::open`] for the restart side.
    pub fn persist_to(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        self.persist_with(dir, PersistConfig::default())
    }

    /// [`Self::persist_to`] with explicit [`PersistConfig`] (segment
    /// size, fsync, deterministic fault injection).
    pub fn persist_with(&self, dir: impl AsRef<Path>, cfg: PersistConfig) -> io::Result<()> {
        let mut writer = persist::SegmentWriter::attach(dir.as_ref(), cfg)?;
        let mut log = self.log.lock().unwrap_or_else(PoisonError::into_inner);
        // Snapshot what is already resident (LRU order, so replay
        // recency roughly matches memory recency).
        let entries: Vec<(u64, Arc<CacheEntry>)> = {
            let st = self.state();
            st.order
                .values()
                .map(|&k| (k, Arc::clone(&st.map[&k].entry)))
                .collect()
        };
        for (key, entry) in &entries {
            if writer.append(*key, entry) {
                self.pstats.writes.fetch_add(1, Ordering::Relaxed);
            }
        }
        *log = Some(writer);
        Ok(())
    }

    /// Reopen a persisted cache after a restart: replay every segment
    /// of `dir` under the paranoid recovery rules (see
    /// [`persist::replay`]'s module docs), then keep appending to the
    /// log. Returns the cache plus the [`LoadReport`] ledger
    /// (`loaded + rejected == records_scanned` always). A corrupt or
    /// missing store yields a colder cache, never an error about
    /// content and never wrong data.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<(Self, LoadReport)> {
        Self::open_with(dir, None, PersistConfig::default())
    }

    /// [`Self::open`] with a byte capacity and explicit config. Loaded
    /// entries pass through the same LRU accounting as inserts, so a
    /// store larger than the cap reloads only its most recent entries.
    pub fn open_with(
        dir: impl AsRef<Path>,
        capacity: Option<u64>,
        cfg: PersistConfig,
    ) -> io::Result<(Self, LoadReport)> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let cache = match capacity {
            Some(c) => Self::with_capacity(c),
            None => Self::new(),
        };
        let report = persist::replay(dir, |key, entry| cache.store_entry(key, Arc::new(entry)))?;
        cache
            .pstats
            .loaded
            .fetch_add(report.loaded, Ordering::Relaxed);
        cache
            .pstats
            .load_rejects
            .fetch_add(report.rejected, Ordering::Relaxed);
        *cache
            .last_load
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(report);
        // Continue appending after the replayed segments; the resident
        // entries are already on disk, so no snapshot this time.
        let writer = persist::SegmentWriter::attach(dir, cfg)?;
        *cache.log.lock().unwrap_or_else(PoisonError::into_inner) = Some(writer);
        Ok((cache, report))
    }

    /// Rewrite the live entries as one fresh segment (tmp file + atomic
    /// rename) and delete the older segments, dropping evicted,
    /// invalidated and superseded garbage from disk. Returns the number
    /// of records written. Errors if no persistence is attached.
    pub fn compact(&self) -> io::Result<u64> {
        let mut log = self.log.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(w) = log.as_mut() else {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "no persistence directory attached",
            ));
        };
        let entries: Vec<(u64, Arc<CacheEntry>)> = {
            let st = self.state();
            st.order
                .values()
                .map(|&k| (k, Arc::clone(&st.map[&k].entry)))
                .collect()
        };
        let n = w.compact(&entries)?;
        self.pstats.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(n)
    }

    /// Simulate a process crash (fault-injection hook): realize the
    /// attached [`PersistFaultPlan`]'s on-disk consequences — truncate
    /// back to the durable frontier, apply the configured bit flip —
    /// and detach the writer. The in-memory contents are untouched;
    /// drop the cache itself to complete the "restart".
    pub fn crash(&self) -> io::Result<()> {
        let mut log = self.log.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(mut w) = log.take() {
            w.crash()?;
        }
        Ok(())
    }

    /// Is a persistence writer currently attached?
    pub fn is_persisting(&self) -> bool {
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    /// Lifetime persistence counters (all zero when persistence was
    /// never attached). Engines fold per-run deltas of these into the
    /// observability snapshot, like capacity evictions.
    pub fn persist_stats(&self) -> PersistStats {
        self.pstats.snapshot()
    }

    /// The [`LoadReport`] of the replay that opened this cache, if it
    /// came from [`Self::open`].
    pub fn load_report(&self) -> Option<LoadReport> {
        *self
            .last_load
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Rebuild `graph` through a fresh [`StfBuilder`], perturbing the flops
/// of a deterministic ~`frac` fraction of tasks (selected by
/// `mp_fault::unit(seed, task, 0xCACE)`). Task/data/type ids are
/// preserved by construction, so the result is "the same program with a
/// few edited tasks" — the incremental-re-execution scenario. Cache
/// keys are re-derived during the rebuild, which re-versions every
/// mutated task's write cone.
pub fn resubmit_with_mutation(graph: &TaskGraph, frac: f64, seed: u64) -> TaskGraph {
    let mut stf = StfBuilder::new();
    for ty in graph.types() {
        stf.graph_mut()
            .register_type(&ty.name, ty.cpu_impl, ty.gpu_impl);
    }
    for d in graph.data() {
        stf.graph_mut().add_data(d.size, d.label.clone());
    }
    for task in graph.tasks() {
        let accesses: Vec<(mp_dag::DataId, AccessMode)> =
            task.accesses.iter().map(|a| (a.data, a.mode)).collect();
        let mutate = frac > 0.0 && mp_fault::unit(seed, task.id.index() as u64, 0xCACE) < frac;
        let flops = if mutate {
            task.flops * 1.0625 + 1.0
        } else {
            task.flops
        };
        let t = stf.submit_prio(task.ttype, accesses, flops, task.user_priority, &task.label);
        debug_assert_eq!(t, task.id);
    }
    stf.finish()
}

/// Tasks whose cache key differs between two id-aligned graphs — the
/// exact set a warm re-run of `new` must re-execute after `old`
/// populated the cache (mutated tasks plus their transitive consumers).
/// Tasks without metadata in either graph are counted as changed (they
/// can never hit).
pub fn changed_tasks(old: &TaskGraph, new: &TaskGraph) -> Vec<TaskId> {
    assert_eq!(old.task_count(), new.task_count(), "graphs must id-align");
    (0..new.task_count())
        .map(TaskId::from_index)
        .filter(|&t| match (old.cache_meta(t), new.cache_meta(t)) {
            (Some(a), Some(b)) => a.key != b.key,
            _ => true,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(flops0: f64) -> TaskGraph {
        let mut stf = StfBuilder::new();
        let k = stf.graph_mut().register_type("K", true, true);
        let a = stf.graph_mut().add_data(64, "a");
        let b = stf.graph_mut().add_data(64, "b");
        stf.submit(k, vec![(a, AccessMode::Write)], flops0, "t0");
        stf.submit(
            k,
            vec![(a, AccessMode::Read), (b, AccessMode::Write)],
            2.0,
            "t1",
        );
        stf.submit(k, vec![(b, AccessMode::ReadWrite)], 3.0, "t2");
        stf.finish()
    }

    fn meta(g: &TaskGraph, i: usize) -> &CacheMeta {
        g.cache_meta(TaskId::from_index(i)).unwrap()
    }

    #[test]
    fn miss_then_hit_roundtrip() {
        let g = chain(1.0);
        let cache = ResultCache::new();
        let m = meta(&g, 0);
        assert!(matches!(cache.lookup(m, false), Lookup::Miss));
        cache.insert(m, None, 64);
        match cache.lookup(m, false) {
            Lookup::Hit(e) => {
                assert_eq!(e.out_versions, m.out_versions);
                assert_eq!(e.bytes, 64);
            }
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn payload_requirement_misses_simulator_entries() {
        let g = chain(1.0);
        let cache = ResultCache::new();
        cache.insert(meta(&g, 0), None, 64);
        assert!(matches!(cache.lookup(meta(&g, 0), true), Lookup::Miss));
        cache.insert(meta(&g, 0), Some(vec![vec![1.0; 8]]), 64);
        assert!(matches!(cache.lookup(meta(&g, 0), true), Lookup::Hit(_)));
    }

    #[test]
    fn poisoned_entry_is_invalidated_never_served() {
        let g = chain(1.0);
        let cache = ResultCache::new();
        let m = meta(&g, 0);
        cache.insert(m, None, 64);
        assert!(cache.poison(m.key));
        assert!(matches!(cache.lookup(m, false), Lookup::Invalidated));
        // The corrupt entry was evicted: the key is free again.
        assert!(matches!(cache.lookup(m, false), Lookup::Miss));
        assert!(cache.is_empty());
    }

    #[test]
    fn stale_version_is_a_miss_not_wrong_data() {
        // Same key slot, different input version (fingerprint differs):
        // must invalidate, never return the old entry.
        let g0 = chain(1.0);
        let cache = ResultCache::new();
        cache.insert(meta(&g0, 1), None, 64);
        let mut stale = meta(&g0, 1).clone();
        // Fake a re-keyed consumer that (improbably) landed on the same
        // key: fingerprint comparison still catches it.
        stale.fingerprint[1] ^= 0xff;
        assert!(matches!(cache.lookup(&stale, false), Lookup::Invalidated));
    }

    /// A wide independent graph: `n` tasks, each writing its own datum —
    /// `n` distinct cache keys for churn tests.
    fn wide(n: usize) -> TaskGraph {
        let mut stf = StfBuilder::new();
        let k = stf.graph_mut().register_type("K", true, true);
        for i in 0..n {
            let d = stf.graph_mut().add_data(64, format!("d{i}"));
            stf.submit(k, vec![(d, AccessMode::Write)], 1.0 + i as f64, "t");
        }
        stf.finish()
    }

    /// Actual fingerprint + out-version residency charge of one task's
    /// entry, in bytes (tests compute expected totals from this rather
    /// than a flat guess).
    fn meta_words_bytes(m: &CacheMeta) -> u64 {
        8 * (m.fingerprint.len() + m.out_versions.len()) as u64
    }

    #[test]
    fn capped_cache_stays_under_the_cap_during_churn() {
        let g = wide(64);
        let payload_bytes = 256u64;
        let per_entry = payload_bytes + meta_words_bytes(meta(&g, 0)) + ENTRY_OVERHEAD_BYTES;
        // Room for 4 full entries.
        let cache = ResultCache::with_capacity(4 * per_entry);
        for round in 0..3 {
            for i in 0..64 {
                let m = meta(&g, i);
                cache.insert(m, Some(vec![vec![round as f64; 32]]), payload_bytes);
                assert!(
                    cache.used_bytes() <= cache.capacity_bytes().unwrap(),
                    "over cap after insert {i} round {round}"
                );
            }
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.used_bytes(), 4 * per_entry);
        // 3 rounds × 64 inserts, 4 still resident; re-inserts of a
        // resident key replace (no eviction), so rounds 2 and 3 each
        // evict their predecessors' full complement.
        assert_eq!(cache.evictions(), 3 * 64 - 4);
        // The survivors are the last four inserted, and they still hit.
        for i in 60..64 {
            assert!(matches!(cache.lookup(meta(&g, i), true), Lookup::Hit(_)));
        }
        assert!(matches!(cache.lookup(meta(&g, 0), true), Lookup::Miss));
    }

    #[test]
    fn lookup_refreshes_lru_recency() {
        let g = wide(4);
        let per_entry = 64 + meta_words_bytes(meta(&g, 0)) + ENTRY_OVERHEAD_BYTES;
        let cache = ResultCache::with_capacity(2 * per_entry);
        cache.insert(meta(&g, 0), Some(vec![vec![0.0; 8]]), 64);
        cache.insert(meta(&g, 1), Some(vec![vec![0.0; 8]]), 64);
        // Touch entry 0: entry 1 becomes the LRU victim.
        assert!(matches!(cache.lookup(meta(&g, 0), true), Lookup::Hit(_)));
        cache.insert(meta(&g, 2), Some(vec![vec![0.0; 8]]), 64);
        assert!(matches!(cache.lookup(meta(&g, 0), true), Lookup::Hit(_)));
        assert!(matches!(cache.lookup(meta(&g, 1), true), Lookup::Miss));
        assert!(matches!(cache.lookup(meta(&g, 2), true), Lookup::Hit(_)));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn oversized_entry_is_refused_not_thrashed() {
        let g = wide(2);
        let cache =
            ResultCache::with_capacity(ENTRY_OVERHEAD_BYTES + meta_words_bytes(meta(&g, 0)) + 16);
        cache.insert(meta(&g, 0), Some(vec![vec![0.0; 2]]), 16);
        assert_eq!(cache.len(), 1);
        // An entry bigger than the whole cap must not wipe the cache.
        cache.insert(meta(&g, 1), Some(vec![vec![0.0; 1024]]), 8192);
        assert_eq!(cache.len(), 1);
        assert!(matches!(cache.lookup(meta(&g, 0), true), Lookup::Hit(_)));
        assert!(matches!(cache.lookup(meta(&g, 1), true), Lookup::Miss));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn invalidation_releases_the_entry_charge() {
        let g = wide(2);
        let cache = ResultCache::with_capacity(1 << 20);
        cache.insert(meta(&g, 0), Some(vec![vec![0.0; 8]]), 64);
        let used = cache.used_bytes();
        assert_eq!(
            used,
            64 + meta_words_bytes(meta(&g, 0)) + ENTRY_OVERHEAD_BYTES
        );
        assert!(cache.poison(meta(&g, 0).key));
        assert!(matches!(
            cache.lookup(meta(&g, 0), false),
            Lookup::Invalidated
        ));
        assert_eq!(cache.used_bytes(), 0);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn panicked_holder_does_not_wedge_the_cache() {
        // A thread that panics while holding the cache lock poisons the
        // mutex. Every later operation must keep working (recovered
        // guard), not propagate the poison panic — one dead worker must
        // not turn into a dead serving process.
        let g = chain(1.0);
        let cache = Arc::new(ResultCache::new());
        cache.insert(meta(&g, 0), Some(vec![vec![1.0; 8]]), 64);
        let poisoner = Arc::clone(&cache);
        let key = meta(&g, 0).key;
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.state();
            panic!("worker dies holding the cache lock");
        })
        .join();
        assert!(cache.inner.is_poisoned(), "test setup: mutex not poisoned");
        // Reads, writes, maintenance — all still usable.
        assert!(matches!(cache.lookup(meta(&g, 0), true), Lookup::Hit(_)));
        cache.insert(meta(&g, 1), None, 64);
        assert_eq!(cache.len(), 2);
        assert!(cache.used_bytes() > 0);
        assert_eq!(cache.evictions(), 0);
        assert!(cache.poison(key));
        assert!(matches!(
            cache.lookup(meta(&g, 0), true),
            Lookup::Invalidated
        ));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn mutation_rebuild_preserves_structure_and_marks_cone() {
        let g = chain(1.0);
        let same = resubmit_with_mutation(&g, 0.0, 42);
        assert!(changed_tasks(&g, &same).is_empty());
        assert_eq!(g.edge_count(), same.edge_count());

        // Mutate everything: every key must change.
        let all = resubmit_with_mutation(&g, 1.1, 42);
        assert_eq!(changed_tasks(&g, &all).len(), g.task_count());
    }

    #[test]
    fn dirty_cone_is_transitively_closed() {
        let g = chain(1.0);
        // Hand-mutate t0 only: t0, t1 (reads a), t2 (reads b) all re-key.
        let mut stf = StfBuilder::new();
        let k = stf.graph_mut().register_type("K", true, true);
        let a = stf.graph_mut().add_data(64, "a");
        let b = stf.graph_mut().add_data(64, "b");
        stf.submit(k, vec![(a, AccessMode::Write)], 9.0, "t0");
        stf.submit(
            k,
            vec![(a, AccessMode::Read), (b, AccessMode::Write)],
            2.0,
            "t1",
        );
        stf.submit(k, vec![(b, AccessMode::ReadWrite)], 3.0, "t2");
        let edited = stf.finish();
        let cone = changed_tasks(&g, &edited);
        assert_eq!(cone.len(), 3, "whole cone of t0 is dirty: {cone:?}");

        // Sanity: the cone respects reachability — every dirty task is
        // t0 or a transitive successor of a dirty task.
        for &t in &cone {
            assert!(
                t == TaskId(0) || g.preds(t).iter().any(|p| cone.contains(p)),
                "{t:?} dirty without a dirty predecessor"
            );
        }
    }

    #[test]
    fn long_fingerprints_pay_their_own_residency() {
        // A chain consumer's fingerprint (2 reads + writes) carries more
        // words than an input-free producer's; the charge must reflect
        // that, or long-fingerprint entries could game a byte cap.
        let g = chain(1.0);
        let cache = ResultCache::new();
        cache.insert(meta(&g, 0), None, 0);
        let small = cache.used_bytes();
        cache.clear();
        cache.insert(meta(&g, 2), None, 0);
        let large = cache.used_bytes();
        assert!(
            meta(&g, 2).fingerprint.len() > meta(&g, 0).fingerprint.len(),
            "test premise: t2 has the longer fingerprint"
        );
        assert!(
            large > small,
            "longer fingerprint must charge more ({large} vs {small})"
        );
        assert_eq!(
            large - small,
            8 * (meta(&g, 2).fingerprint.len() - meta(&g, 0).fingerprint.len()) as u64
        );
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mp-cache-lib-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn persisted_cache_survives_a_restart() {
        let g = wide(8);
        let dir = tmpdir("restart");
        let cache = ResultCache::new();
        cache.persist_to(&dir).unwrap();
        assert!(cache.is_persisting());
        for i in 0..8 {
            cache.insert(meta(&g, i), Some(vec![vec![i as f64; 4]]), 32);
        }
        assert_eq!(cache.persist_stats().writes, 8);
        drop(cache); // "process exit"

        let (reopened, report) = ResultCache::open(&dir).unwrap();
        assert_eq!(report.loaded, 8);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.loaded + report.rejected, report.records_scanned);
        assert_eq!(reopened.load_report(), Some(report));
        assert_eq!(reopened.persist_stats().loaded, 8);
        assert_eq!(reopened.len(), 8);
        for i in 0..8 {
            match reopened.lookup(meta(&g, i), true) {
                Lookup::Hit(e) => {
                    assert_eq!(e.payload.as_ref().unwrap()[0], vec![i as f64; 4]);
                }
                other => panic!("entry {i} lost across restart: {other:?}"),
            }
        }
        // The reopened cache keeps persisting: a third generation sees
        // entries inserted after the restart.
        third_generation_sees_post_restart_inserts(&g, &reopened, &dir);
    }

    fn third_generation_sees_post_restart_inserts(
        g: &TaskGraph,
        reopened: &ResultCache,
        dir: &std::path::Path,
    ) {
        let extra = resubmit_with_mutation(g, 1.1, 7);
        reopened.insert(meta(&extra, 0), Some(vec![vec![9.0]]), 8);
        let (third, report) = ResultCache::open(dir).unwrap();
        assert_eq!(report.loaded, 9);
        assert!(matches!(
            third.lookup(meta(&extra, 0), true),
            Lookup::Hit(_)
        ));
    }

    #[test]
    fn snapshot_on_attach_persists_preexisting_entries() {
        let g = wide(4);
        let dir = tmpdir("snapshot");
        let cache = ResultCache::new();
        for i in 0..4 {
            cache.insert(meta(&g, i), None, 16);
        }
        cache.persist_to(&dir).unwrap(); // attach after the fact
        assert_eq!(cache.persist_stats().writes, 4, "snapshot counted");
        let (reopened, report) = ResultCache::open(&dir).unwrap();
        assert_eq!(report.loaded, 4);
        assert!(matches!(
            reopened.lookup(meta(&g, 2), false),
            Lookup::Hit(_)
        ));
    }

    #[test]
    fn compaction_drops_garbage_and_preserves_hits() {
        let g = wide(16);
        let dir = tmpdir("compact");
        let m0 = meta(&g, 0);
        let per_entry = 16 + meta_words_bytes(m0) + ENTRY_OVERHEAD_BYTES;
        let cache = ResultCache::with_capacity(4 * per_entry);
        cache.persist_to(&dir).unwrap();
        for i in 0..16 {
            cache.insert(meta(&g, i), Some(vec![vec![0.5; 2]]), 16);
        }
        assert_eq!(cache.len(), 4, "cap holds 4");
        let live = cache.compact().unwrap();
        assert_eq!(live, 4);
        assert_eq!(cache.persist_stats().compactions, 1);
        // Reopen: only the live set comes back — evicted garbage gone.
        let (reopened, report) = ResultCache::open(&dir).unwrap();
        assert_eq!(report.loaded, 4);
        assert_eq!(reopened.len(), 4);
        for i in 12..16 {
            assert!(matches!(reopened.lookup(meta(&g, i), true), Lookup::Hit(_)));
        }
    }

    #[test]
    fn open_with_capacity_reloads_only_the_most_recent() {
        let g = wide(8);
        let dir = tmpdir("cap-open");
        let cache = ResultCache::new();
        cache.persist_to(&dir).unwrap();
        for i in 0..8 {
            cache.insert(meta(&g, i), Some(vec![vec![0.0; 2]]), 16);
        }
        let per_entry = 16 + meta_words_bytes(meta(&g, 0)) + ENTRY_OVERHEAD_BYTES;
        let (reopened, report) =
            ResultCache::open_with(&dir, Some(2 * per_entry), PersistConfig::default()).unwrap();
        assert_eq!(report.loaded, 8, "all records replayed");
        assert_eq!(reopened.len(), 2, "but only 2 fit the cap");
        assert!(matches!(reopened.lookup(meta(&g, 7), true), Lookup::Hit(_)));
        assert!(matches!(reopened.lookup(meta(&g, 0), true), Lookup::Miss));
    }

    #[test]
    fn crash_with_clean_plan_loses_nothing() {
        let g = wide(5);
        let dir = tmpdir("clean-crash");
        let cache = ResultCache::new();
        cache.persist_with(&dir, PersistConfig::default()).unwrap();
        for i in 0..5 {
            cache.insert(meta(&g, i), None, 8);
        }
        cache.crash().unwrap();
        assert!(!cache.is_persisting(), "writer detached by crash");
        cache.insert(meta(&g, 0), None, 8); // post-crash insert: dropped
        let (_, report) = ResultCache::open(&dir).unwrap();
        assert_eq!(report.loaded, 5);
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn open_on_a_missing_dir_is_an_empty_cache() {
        let dir = tmpdir("fresh");
        let (cache, report) = ResultCache::open(&dir).unwrap();
        assert!(cache.is_empty());
        assert_eq!(report, LoadReport::default());
        assert!(cache.is_persisting(), "ready to persist from day one");
    }

    #[test]
    fn compact_without_persistence_is_a_typed_error() {
        let cache = ResultCache::new();
        let err = cache.compact().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotConnected);
    }
}
