//! Crash-safe segment-log persistence for the result cache
//! (DESIGN.md §14).
//!
//! ## Log format
//!
//! A persistence directory holds append-only **segments** named
//! `seg-NNNNNN.log`, replayed in ascending index order. Each segment
//! starts with an 8-byte magic (`MPCSEG1\0`) followed by
//! length-prefixed, checksummed records:
//!
//! ```text
//! ┌────────────┬──────────────┬──────────┬──────────────┐
//! │ u32 len    │ u64 checksum │ body     │ u8 commit    │
//! │ (body LE)  │ FNV-1a over  │ len bytes│ marker 0xC7  │
//! │            │ len ++ body  │          │              │
//! └────────────┴──────────────┴──────────┴──────────────┘
//! body := u64 key · u64 bytes · u32 fp_len · u32 ov_len
//!       · u32 nbufs (u32::MAX = no payload)
//!       · fp_len × u64 · ov_len × u64
//!       · per buf: u32 len · len × u64 (f64 bit patterns)
//! ```
//!
//! ## Commit discipline
//!
//! A record is written in two flushed steps: header + body first, the
//! trailing commit marker only after the body reached the file. A crash
//! between the two leaves a record whose marker byte is missing (torn
//! tail) or stale (rejected), so **a record is live iff its length,
//! checksum and commit marker all agree** — there is no state in which
//! a half-written record can replay as data.
//!
//! ## Recovery rules
//!
//! [`replay`] walks every segment byte by byte and **rejects rather
//! than trusts**: a short/bad magic rejects the whole segment; a torn
//! tail (fewer bytes than a record header) or a length pointing past
//! the segment end rejects the remainder of that segment; a checksum,
//! commit-marker, structural-parse or fingerprint/key mismatch rejects
//! that record and resumes at the next length boundary. Every reject is
//! counted in [`LoadReport`]; the caller ends up with a smaller — never
//! a wrong — cache, and loaded entries still pass the word-for-word
//! fingerprint verification on every lookup.
//!
//! ## Fault injection
//!
//! [`PersistFaultPlan`] mirrors `mp_fault::FaultPlan`'s philosophy:
//! deterministic, seedable, no wall clock. `kill_after_bytes` cuts the
//! record stream mid-write at an exact byte offset (the prefix lands on
//! disk, the writer dies); `drop_flush_after` freezes the durable
//! frontier so [`SegmentWriter::crash`] discards everything written
//! after flush `k` (lost page-cache model); `bit_flip` flips one bit of
//! the on-disk image at crash time (silent media corruption model).

use std::fs::{self, File, OpenOptions};
use std::io;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use mp_dag::hash;

use crate::CacheEntry;

/// First 8 bytes of every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"MPCSEG1\0";

/// Trailing byte of every committed record.
pub const COMMIT_MARKER: u8 = 0xC7;

/// Bytes before the body: `u32` length + `u64` checksum.
const RECORD_HEADER_BYTES: usize = 12;

/// Upper bound on one record body — anything larger is a corrupt
/// length, not a plausible cache entry.
const MAX_BODY_BYTES: u32 = 1 << 30;

/// Upper bound on fingerprint / out-version word counts.
const MAX_VEC_WORDS: u32 = 1 << 20;

/// Upper bound on payload buffer count.
const MAX_PAYLOAD_BUFS: u32 = 1 << 20;

/// No-payload sentinel for the `nbufs` body field.
const NO_PAYLOAD: u32 = u32::MAX;

/// One deliberate bit flip applied to the on-disk image at crash time.
/// `offset` indexes the concatenation of all segment bytes in replay
/// order (taken modulo the total length), `bit` the bit within that
/// byte (modulo 8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BitFlip {
    /// Byte offset into the concatenated segment image.
    pub offset: u64,
    /// Bit index within the byte (`% 8`).
    pub bit: u8,
}

/// Deterministic fault plan for the persistence layer. All knobs
/// default to off; the `seed` exists so sweeps can derive offsets via
/// `mp_fault::splitmix64` without any wall-clock or RNG state.
#[derive(Clone, Copy, Debug, Default)]
pub struct PersistFaultPlan {
    /// Sweep seed (not consumed by the writer itself — offsets derived
    /// from it stay reproducible across runs).
    pub seed: u64,
    /// Kill the writer mid-write once this many record-stream bytes
    /// have been submitted: the write crossing the threshold lands only
    /// its prefix and every later persist is silently dropped.
    pub kill_after_bytes: Option<u64>,
    /// Flushes with ordinal `>= k` stop advancing the durable frontier:
    /// at [`crash`](SegmentWriter::crash) the current segment is
    /// truncated back to the last durable byte (lost-page-cache model).
    pub drop_flush_after: Option<u64>,
    /// Flip one bit of the on-disk image at crash time.
    pub bit_flip: Option<BitFlip>,
}

impl PersistFaultPlan {
    /// Plan with only the sweep seed set.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Kill the writer after `n` submitted record-stream bytes.
    pub fn kill_after_bytes(mut self, n: u64) -> Self {
        self.kill_after_bytes = Some(n);
        self
    }

    /// Drop every flush with ordinal `>= k`.
    pub fn drop_flush_after(mut self, k: u64) -> Self {
        self.drop_flush_after = Some(k);
        self
    }

    /// Flip `bit % 8` of byte `offset % image_len` at crash time.
    pub fn bit_flip(mut self, offset: u64, bit: u8) -> Self {
        self.bit_flip = Some(BitFlip { offset, bit });
        self
    }

    /// Does this plan inject anything at all?
    pub fn is_clean(&self) -> bool {
        self.kill_after_bytes.is_none()
            && self.drop_flush_after.is_none()
            && self.bit_flip.is_none()
    }
}

/// Writer configuration.
#[derive(Clone, Copy, Debug)]
pub struct PersistConfig {
    /// Rotate to a new segment once the current one holds at least this
    /// many bytes (records never span segments).
    pub segment_bytes: u64,
    /// Issue `fsync` at every durable point. Off by default: the tests
    /// model durability through the deterministic fault plan, and CI
    /// containers make real fsync timing meaningless.
    pub fsync: bool,
    /// Deterministic fault injection (default: none).
    pub fault: PersistFaultPlan,
}

impl Default for PersistConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 8 << 20,
            fsync: false,
            fault: PersistFaultPlan::default(),
        }
    }
}

/// What one [`replay`] of a persistence directory found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Segment files scanned.
    pub segments: u64,
    /// Record slots examined (`loaded + rejected` always).
    pub records_scanned: u64,
    /// Records that passed every check and were handed to the cache.
    pub loaded: u64,
    /// Records (or segment remainders / whole unreadable segments)
    /// skipped by a recovery rule.
    pub rejected: u64,
    /// Total bytes read across all segments.
    pub bytes_scanned: u64,
}

/// Lifetime persistence counters of one cache (monotone; engines report
/// per-run deltas the same way they do for capacity evictions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Records fully committed to the log.
    pub writes: u64,
    /// Records accepted from disk by `open`.
    pub loaded: u64,
    /// Records rejected by a recovery rule during `open`.
    pub load_rejects: u64,
    /// Snapshot compactions completed.
    pub compactions: u64,
}

/// Atomic backing for [`PersistStats`] on the cache.
#[derive(Debug, Default)]
pub(crate) struct PersistCounters {
    pub writes: AtomicU64,
    pub loaded: AtomicU64,
    pub load_rejects: AtomicU64,
    pub compactions: AtomicU64,
}

impl PersistCounters {
    pub fn snapshot(&self) -> PersistStats {
        PersistStats {
            writes: self.writes.load(Ordering::Relaxed),
            loaded: self.loaded.load(Ordering::Relaxed),
            load_rejects: self.load_rejects.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
        }
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// FNV-1a over the length prefix and the body — the per-record checksum.
fn record_checksum(len_le: [u8; 4], body: &[u8]) -> u64 {
    let mut h = hash::FNV_OFFSET;
    for &b in len_le.iter().chain(body.iter()) {
        h ^= b as u64;
        h = h.wrapping_mul(hash::FNV_PRIME);
    }
    h
}

/// Serialize one `(key, entry)` into a complete record (header + body +
/// commit marker).
pub(crate) fn encode_record(key: u64, entry: &CacheEntry) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    put_u64(&mut body, key);
    put_u64(&mut body, entry.bytes);
    put_u32(&mut body, entry.fingerprint.len() as u32);
    put_u32(&mut body, entry.out_versions.len() as u32);
    match &entry.payload {
        None => put_u32(&mut body, NO_PAYLOAD),
        Some(bufs) => put_u32(&mut body, bufs.len() as u32),
    }
    for &w in &entry.fingerprint {
        put_u64(&mut body, w);
    }
    for &v in &entry.out_versions {
        put_u64(&mut body, v);
    }
    if let Some(bufs) = &entry.payload {
        for buf in bufs {
            put_u32(&mut body, buf.len() as u32);
            for &x in buf {
                put_u64(&mut body, x.to_bits());
            }
        }
    }
    let len_le = (body.len() as u32).to_le_bytes();
    let sum = record_checksum(len_le, &body);
    let mut rec = Vec::with_capacity(RECORD_HEADER_BYTES + body.len() + 1);
    rec.extend_from_slice(&len_le);
    rec.extend_from_slice(&sum.to_le_bytes());
    rec.extend_from_slice(&body);
    rec.push(COMMIT_MARKER);
    rec
}

/// Byte cursor over a record body; every read is bounds-checked so a
/// lying length field can only produce a reject, never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u32(&mut self) -> Option<u32> {
        let b = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Structural parse of one body. `None` = reject. The final
/// fingerprint/key verification lives here too: a record claiming key
/// `k` whose stored fingerprint does not hash back to `k` is corrupt or
/// forged and must not enter the store.
fn parse_body(body: &[u8]) -> Option<(u64, CacheEntry)> {
    let mut c = Cursor { buf: body, pos: 0 };
    let key = c.u64()?;
    let bytes = c.u64()?;
    let fp_len = c.u32()?;
    let ov_len = c.u32()?;
    let nbufs = c.u32()?;
    if fp_len > MAX_VEC_WORDS || ov_len > MAX_VEC_WORDS {
        return None;
    }
    if nbufs != NO_PAYLOAD && nbufs > MAX_PAYLOAD_BUFS {
        return None;
    }
    let mut fingerprint = Vec::with_capacity(fp_len as usize);
    for _ in 0..fp_len {
        fingerprint.push(c.u64()?);
    }
    let mut out_versions = Vec::with_capacity(ov_len as usize);
    for _ in 0..ov_len {
        out_versions.push(c.u64()?);
    }
    let payload = if nbufs == NO_PAYLOAD {
        None
    } else {
        let mut bufs = Vec::with_capacity(nbufs as usize);
        for _ in 0..nbufs {
            let blen = c.u32()?;
            if (blen as usize) * 8 > body.len() - c.pos {
                return None;
            }
            let mut buf = Vec::with_capacity(blen as usize);
            for _ in 0..blen {
                buf.push(f64::from_bits(c.u64()?));
            }
            bufs.push(buf);
        }
        Some(bufs)
    };
    if !c.done() {
        return None; // trailing garbage inside a "valid" length
    }
    if hash::fnv1a_words(&fingerprint) != key {
        return None; // fingerprint/key mismatch: corrupt or forged
    }
    Some((
        key,
        CacheEntry {
            fingerprint,
            out_versions,
            payload,
            bytes,
        },
    ))
}

/// Segment files of `dir` in replay (ascending index) order.
fn segment_paths(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(idx) = name
            .strip_prefix("seg-")
            .and_then(|r| r.strip_suffix(".log"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        segs.push((idx, entry.path()));
    }
    segs.sort_unstable_by_key(|&(i, _)| i);
    Ok(segs)
}

/// Replay every segment of `dir`, feeding each record that survives the
/// recovery rules to `accept` (ascending segment order, so later
/// appends of the same key win). IO errors reading the directory
/// surface; corrupt *content* never does — it is counted and skipped.
pub(crate) fn replay(
    dir: &Path,
    mut accept: impl FnMut(u64, CacheEntry),
) -> io::Result<LoadReport> {
    let mut report = LoadReport::default();
    for (_, path) in segment_paths(dir)? {
        let bytes = fs::read(&path)?;
        report.segments += 1;
        report.bytes_scanned += bytes.len() as u64;
        if bytes.len() < SEGMENT_MAGIC.len() || bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
            // Unreadable segment: one counted reject for the whole file.
            report.records_scanned += 1;
            report.rejected += 1;
            continue;
        }
        let mut o = SEGMENT_MAGIC.len();
        while o < bytes.len() {
            report.records_scanned += 1;
            let rem = bytes.len() - o;
            if rem < RECORD_HEADER_BYTES + 1 {
                // Torn tail: not even a header fits.
                report.rejected += 1;
                break;
            }
            let body_len = u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
            let total = RECORD_HEADER_BYTES + body_len as usize + 1;
            if body_len > MAX_BODY_BYTES || total > rem {
                // Broken header or truncated record: the length cannot
                // be trusted, so the segment remainder is unreachable.
                report.rejected += 1;
                break;
            }
            let stored_sum = u64::from_le_bytes(bytes[o + 4..o + 12].try_into().unwrap());
            let body = &bytes[o + RECORD_HEADER_BYTES..o + RECORD_HEADER_BYTES + body_len as usize];
            let marker = bytes[o + total - 1];
            o += total;
            if stored_sum != record_checksum(body_len.to_le_bytes(), body)
                || marker != COMMIT_MARKER
            {
                report.rejected += 1;
                continue;
            }
            match parse_body(body) {
                Some((key, entry)) => {
                    report.loaded += 1;
                    accept(key, entry);
                }
                None => report.rejected += 1,
            }
        }
    }
    debug_assert_eq!(report.loaded + report.rejected, report.records_scanned);
    Ok(report)
}

/// Append-only segment writer with a simulated durability frontier.
///
/// Real durability (fsync) is optional; what the chaos tests rely on is
/// the *deterministic* model: `durable` tracks the byte the file would
/// still hold after a crash, and [`crash`](Self::crash) realizes
/// exactly that state on disk.
#[derive(Debug)]
pub(crate) struct SegmentWriter {
    dir: PathBuf,
    cfg: PersistConfig,
    file: Option<File>,
    seg_index: u64,
    seg_path: PathBuf,
    /// Bytes physically written to the current segment (incl. magic).
    seg_written: u64,
    /// Durable frontier of the current segment.
    durable: u64,
    flush_ordinal: u64,
    /// Record-stream bytes submitted over the writer's lifetime (magic
    /// bytes excluded, so kill offsets are segmentation-independent).
    submitted: u64,
    dead: bool,
}

impl SegmentWriter {
    /// Attach to `dir` (created if missing), appending after the
    /// highest existing segment. The first segment file is created
    /// lazily on the first append, so probing/opening never litters
    /// empty files.
    pub fn attach(dir: &Path, cfg: PersistConfig) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let next = segment_paths(dir)?
            .last()
            .map_or(0, |&(i, _)| i.saturating_add(1));
        Ok(Self {
            dir: dir.to_path_buf(),
            cfg,
            file: None,
            seg_index: next,
            seg_path: PathBuf::new(),
            seg_written: 0,
            durable: 0,
            flush_ordinal: 0,
            submitted: 0,
            dead: false,
        })
    }

    fn seg_name(idx: u64) -> String {
        format!("seg-{idx:06}.log")
    }

    /// A durable point: advance the frontier unless the fault plan
    /// drops this flush.
    fn flush_point(&mut self) {
        let dropped = self
            .cfg
            .fault
            .drop_flush_after
            .is_some_and(|k| self.flush_ordinal >= k);
        self.flush_ordinal += 1;
        if dropped {
            return;
        }
        self.durable = self.seg_written;
        if self.cfg.fsync {
            if let Some(f) = &self.file {
                let _ = f.sync_data();
            }
        }
    }

    /// Open the current segment file, writing the magic, if not open.
    fn ensure_file(&mut self) -> io::Result<()> {
        if self.file.is_some() {
            return Ok(());
        }
        let path = self.dir.join(Self::seg_name(self.seg_index));
        let mut f = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)?;
        f.write_all(&SEGMENT_MAGIC)?;
        self.seg_path = path;
        self.seg_written = SEGMENT_MAGIC.len() as u64;
        self.durable = 0;
        self.file = Some(f);
        self.flush_point();
        Ok(())
    }

    /// Append one record. Returns `true` iff the record was fully
    /// committed (header, body and commit marker all written). A dead
    /// writer (earlier kill or IO error) drops the record silently —
    /// persistence is an accelerator, and a disk that stopped accepting
    /// writes must never take the serving process down with it.
    pub fn append(&mut self, key: u64, entry: &CacheEntry) -> bool {
        if self.dead {
            return false;
        }
        match self.append_inner(key, entry) {
            Ok(committed) => committed,
            Err(_) => {
                self.dead = true;
                false
            }
        }
    }

    fn append_inner(&mut self, key: u64, entry: &CacheEntry) -> io::Result<bool> {
        let rec = encode_record(key, entry);
        if self.file.is_some() && self.seg_written >= self.cfg.segment_bytes {
            // Rotate: records never span segments. The closed segment
            // is fully durable (close implies flush in this model).
            self.file = None;
            self.seg_index += 1;
        }
        self.ensure_file()?;
        let file = self.file.as_mut().expect("segment file just ensured");

        if let Some(n) = self.cfg.fault.kill_after_bytes {
            let len = rec.len() as u64;
            if self.submitted + len > n {
                // The write crossing the threshold lands only its
                // prefix; the writer is dead from here on.
                let keep = (n - self.submitted) as usize;
                file.write_all(&rec[..keep])?;
                self.seg_written += keep as u64;
                // A process kill loses nothing the OS already has: the
                // prefix is on disk, so the frontier follows it.
                self.durable = self.seg_written;
                self.submitted = n;
                self.dead = true;
                return Ok(false);
            }
        }

        // Commit discipline: body durable before the marker exists.
        file.write_all(&rec[..rec.len() - 1])?;
        self.seg_written += (rec.len() - 1) as u64;
        self.flush_point();
        let file = self.file.as_mut().expect("segment file open");
        file.write_all(&rec[rec.len() - 1..])?;
        self.seg_written += 1;
        self.flush_point();
        self.submitted += rec.len() as u64;
        Ok(true)
    }

    /// Rewrite `entries` as one fresh segment with an index above every
    /// existing one, atomically (tmp file + rename), then delete the
    /// older segments. A crash between rename and deletes only
    /// resurrects stale *older* records, which the compacted segment
    /// overrides by replay order. Returns the number of live records
    /// written.
    pub fn compact(&mut self, entries: &[(u64, std::sync::Arc<CacheEntry>)]) -> io::Result<u64> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "persistence writer is dead",
            ));
        }
        self.file = None; // close the active segment first
        let old: Vec<(u64, PathBuf)> = segment_paths(&self.dir)?;
        let new_idx = old.last().map_or(0, |&(i, _)| i + 1).max(self.seg_index);
        let tmp = self.dir.join("compact.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&SEGMENT_MAGIC)?;
            for (key, entry) in entries {
                f.write_all(&encode_record(*key, entry))?;
            }
            f.sync_data()?;
        }
        fs::rename(&tmp, self.dir.join(Self::seg_name(new_idx)))?;
        for (_, path) in old {
            let _ = fs::remove_file(path);
        }
        self.seg_index = new_idx + 1;
        self.seg_written = 0;
        self.durable = 0;
        Ok(entries.len() as u64)
    }

    /// Realize the fault plan's crash semantics on disk and kill the
    /// writer: truncate the current segment back to its durable
    /// frontier (dropped flushes lose their bytes) and apply the
    /// configured bit flip to the surviving image.
    pub fn crash(&mut self) -> io::Result<()> {
        if let Some(f) = self.file.take() {
            if self.durable < self.seg_written {
                f.set_len(self.durable)?;
            }
        }
        self.dead = true;
        if let Some(flip) = self.cfg.fault.bit_flip {
            apply_bit_flip(&self.dir, flip)?;
        }
        Ok(())
    }
}

/// Flip one bit of the concatenated segment image of `dir`.
fn apply_bit_flip(dir: &Path, flip: BitFlip) -> io::Result<()> {
    let segs = segment_paths(dir)?;
    let mut lens = Vec::with_capacity(segs.len());
    let mut total = 0u64;
    for (_, path) in &segs {
        let len = fs::metadata(path)?.len();
        lens.push(len);
        total += len;
    }
    if total == 0 {
        return Ok(());
    }
    let mut off = flip.offset % total;
    for ((_, path), len) in segs.iter().zip(lens) {
        if off >= len {
            off -= len;
            continue;
        }
        let mut f = OpenOptions::new().read(true).write(true).open(path)?;
        f.seek(SeekFrom::Start(off))?;
        let mut b = [0u8; 1];
        std::io::Read::read_exact(&mut f, &mut b)?;
        b[0] ^= 1 << (flip.bit % 8);
        f.seek(SeekFrom::Start(off))?;
        f.write_all(&b)?;
        return Ok(());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(fp: Vec<u64>, payload: Option<Vec<Vec<f64>>>) -> (u64, CacheEntry) {
        let key = hash::fnv1a_words(&fp);
        (
            key,
            CacheEntry {
                fingerprint: fp,
                out_versions: vec![7, 9],
                payload,
                bytes: 64,
            },
        )
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mp-persist-unit-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn record_roundtrips_bit_for_bit() {
        let (key, e) = entry(vec![1, 2, 3], Some(vec![vec![1.5, -0.0], vec![]]));
        let rec = encode_record(key, &e);
        assert_eq!(rec[rec.len() - 1], COMMIT_MARKER);
        let body = &rec[RECORD_HEADER_BYTES..rec.len() - 1];
        let (k2, e2) = parse_body(body).expect("parse");
        assert_eq!(k2, key);
        assert_eq!(e2.fingerprint, e.fingerprint);
        assert_eq!(e2.out_versions, e.out_versions);
        assert_eq!(e2.bytes, e.bytes);
        let (b0, b1) = match &e2.payload {
            Some(bufs) => (&bufs[0], &bufs[1]),
            None => panic!("payload lost"),
        };
        assert_eq!(b0.len(), 2);
        assert_eq!(b0[0], 1.5);
        assert!(b0[1] == 0.0 && b0[1].is_sign_negative(), "-0.0 preserved");
        assert!(b1.is_empty());
    }

    #[test]
    fn key_fingerprint_mismatch_is_rejected() {
        let (_, e) = entry(vec![1, 2, 3], None);
        let rec = encode_record(0xBAD, &e); // forged key
        let body = &rec[RECORD_HEADER_BYTES..rec.len() - 1];
        assert!(parse_body(body).is_none());
    }

    #[test]
    fn writer_roundtrip_replays_every_record() {
        let dir = tmpdir("roundtrip");
        let mut w = SegmentWriter::attach(&dir, PersistConfig::default()).unwrap();
        let mut want = Vec::new();
        for i in 0..10u64 {
            let (k, e) = entry(vec![i, i + 1], Some(vec![vec![i as f64; 4]]));
            assert!(w.append(k, &e));
            want.push(k);
        }
        let mut got = Vec::new();
        let rep = replay(&dir, |k, _| got.push(k)).unwrap();
        assert_eq!(rep.loaded, 10);
        assert_eq!(rep.rejected, 0);
        assert_eq!(rep.records_scanned, 10);
        assert_eq!(rep.segments, 1);
        assert_eq!(got, want);
    }

    #[test]
    fn rotation_splits_segments_and_replays_in_order() {
        let dir = tmpdir("rotate");
        let cfg = PersistConfig {
            segment_bytes: 64, // rotate almost every record
            ..PersistConfig::default()
        };
        let mut w = SegmentWriter::attach(&dir, cfg).unwrap();
        let mut want = Vec::new();
        for i in 0..8u64 {
            let (k, e) = entry(vec![i], None);
            assert!(w.append(k, &e));
            want.push(k);
        }
        let mut got = Vec::new();
        let rep = replay(&dir, |k, _| got.push(k)).unwrap();
        assert!(rep.segments > 1, "expected rotation, got {rep:?}");
        assert_eq!(rep.loaded, 8);
        assert_eq!(got, want, "replay preserves append order across segments");
    }

    #[test]
    fn kill_mid_write_loses_only_the_torn_record() {
        let dir = tmpdir("kill");
        // First, measure a full run to find a mid-record offset.
        let mut w = SegmentWriter::attach(&dir, PersistConfig::default()).unwrap();
        let recs: Vec<(u64, CacheEntry)> = (0..4u64).map(|i| entry(vec![i, 42], None)).collect();
        for (k, e) in &recs {
            w.append(*k, e);
        }
        let total = w.submitted;
        let rec_len = total / 4;
        // Kill inside record 2 (strictly after record 1 committed).
        for cut in [rec_len + 1, rec_len + rec_len / 2, 2 * rec_len - 1] {
            let dir = tmpdir(&format!("kill-{cut}"));
            let cfg = PersistConfig {
                fault: PersistFaultPlan::seeded(1).kill_after_bytes(cut),
                ..PersistConfig::default()
            };
            let mut w = SegmentWriter::attach(&dir, cfg).unwrap();
            assert!(w.append(recs[0].0, &recs[0].1));
            assert!(
                !w.append(recs[1].0, &recs[1].1),
                "torn record not committed"
            );
            assert!(!w.append(recs[2].0, &recs[2].1), "dead writer drops writes");
            w.crash().unwrap();
            let mut got = Vec::new();
            let rep = replay(&dir, |k, _| got.push(k)).unwrap();
            assert_eq!(got, vec![recs[0].0], "cut={cut}: {rep:?}");
            assert_eq!(rep.loaded, 1);
            assert_eq!(rep.rejected, 1, "the torn record is counted");
        }
    }

    #[test]
    fn dropped_flushes_truncate_at_crash() {
        let dir = tmpdir("dropflush");
        let cfg = PersistConfig {
            // Ordinal 0 is the magic flush; 1–2 are record 0's body and
            // marker flushes. Everything later is lost.
            fault: PersistFaultPlan::seeded(2).drop_flush_after(3),
            ..PersistConfig::default()
        };
        let mut w = SegmentWriter::attach(&dir, cfg).unwrap();
        let recs: Vec<(u64, CacheEntry)> = (0..3u64).map(|i| entry(vec![i, 9], None)).collect();
        for (k, e) in &recs {
            assert!(w.append(*k, e), "writes succeed; durability is lost later");
        }
        w.crash().unwrap();
        let mut got = Vec::new();
        let rep = replay(&dir, |k, _| got.push(k)).unwrap();
        assert_eq!(got, vec![recs[0].0], "{rep:?}");
        assert_eq!(rep.rejected, 0, "clean truncation at a record boundary");
    }

    #[test]
    fn bit_flip_rejects_exactly_the_hit_record() {
        // Flip one bit in every byte position of a 3-record log: open
        // must never fail, never accept a record whose bytes changed.
        let dir0 = tmpdir("flip-ref");
        let mut w = SegmentWriter::attach(&dir0, PersistConfig::default()).unwrap();
        let recs: Vec<(u64, CacheEntry)> = (0..3u64)
            .map(|i| entry(vec![i, 5], Some(vec![vec![i as f64]])))
            .collect();
        for (k, e) in &recs {
            w.append(*k, e);
        }
        let image_len = fs::metadata(dir0.join("seg-000000.log")).unwrap().len();
        for off in 0..image_len {
            let dir = tmpdir(&format!("flip-{off}"));
            let cfg = PersistConfig {
                fault: PersistFaultPlan::seeded(off).bit_flip(off, (off % 8) as u8),
                ..PersistConfig::default()
            };
            let mut w = SegmentWriter::attach(&dir, cfg).unwrap();
            for (k, e) in &recs {
                w.append(*k, e);
            }
            w.crash().unwrap();
            let mut got = Vec::new();
            let rep = replay(&dir, |k, e| got.push((k, e))).unwrap();
            assert_eq!(
                rep.loaded + rep.rejected,
                rep.records_scanned,
                "off={off}: ledger must balance: {rep:?}"
            );
            assert!(rep.rejected >= 1, "off={off}: a flipped bit must reject");
            // Every accepted record is byte-identical to what was
            // written: key, fingerprint, payload all intact.
            for (k, e) in got {
                let orig = recs.iter().find(|(ok, _)| *ok == k).expect("known key");
                assert_eq!(e.fingerprint, orig.1.fingerprint, "off={off}");
                assert_eq!(e.payload, orig.1.payload, "off={off}");
            }
        }
    }

    #[test]
    fn truncation_at_every_offset_never_panics_or_lies() {
        let dir0 = tmpdir("trunc-ref");
        let mut w = SegmentWriter::attach(&dir0, PersistConfig::default()).unwrap();
        let recs: Vec<(u64, CacheEntry)> = (0..3u64)
            .map(|i| entry(vec![i, 6], Some(vec![vec![i as f64; 2]])))
            .collect();
        // Record byte boundaries in the file (after the magic).
        let mut boundaries = vec![SEGMENT_MAGIC.len() as u64];
        for (k, e) in &recs {
            w.append(*k, e);
            boundaries.push(SEGMENT_MAGIC.len() as u64 + w.submitted);
        }
        let src = dir0.join("seg-000000.log");
        let image = fs::read(&src).unwrap();
        for cut in 0..=image.len() {
            let dir = tmpdir(&format!("trunc-{cut}"));
            fs::write(dir.join("seg-000000.log"), &image[..cut]).unwrap();
            let mut got = Vec::new();
            let rep = replay(&dir, |k, _| got.push(k)).unwrap();
            // Every record fully before the cut must survive…
            let complete = boundaries
                .iter()
                .filter(|&&b| b <= cut as u64)
                .count()
                .saturating_sub(1);
            assert_eq!(rep.loaded as usize, complete, "cut={cut}: {rep:?}");
            // …and is bit-exact (keys in order).
            let want: Vec<u64> = recs.iter().take(complete).map(|(k, _)| *k).collect();
            assert_eq!(got, want, "cut={cut}");
        }
    }

    #[test]
    fn compaction_rewrites_live_set_and_drops_garbage() {
        let dir = tmpdir("compact");
        let mut w = SegmentWriter::attach(&dir, PersistConfig::default()).unwrap();
        let recs: Vec<(u64, CacheEntry)> = (0..6u64).map(|i| entry(vec![i, 3], None)).collect();
        for (k, e) in &recs {
            w.append(*k, e);
        }
        // Live set: entries 3..6 only (0..3 "evicted").
        let live: Vec<(u64, std::sync::Arc<CacheEntry>)> = recs[3..]
            .iter()
            .map(|(k, e)| (*k, std::sync::Arc::new(e.clone())))
            .collect();
        assert_eq!(w.compact(&live).unwrap(), 3);
        let mut got = Vec::new();
        let rep = replay(&dir, |k, _| got.push(k)).unwrap();
        assert_eq!(rep.segments, 1, "old segments deleted");
        assert_eq!(rep.loaded, 3);
        let want: Vec<u64> = live.iter().map(|(k, _)| *k).collect();
        assert_eq!(got, want);
        // The writer keeps appending after compaction.
        let (k, e) = entry(vec![77, 3], None);
        assert!(w.append(k, &e));
        let rep = replay(&dir, |_, _| {}).unwrap();
        assert_eq!(rep.loaded, 4);
        assert_eq!(rep.segments, 2);
    }
}
