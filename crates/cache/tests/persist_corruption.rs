//! Corruption fuzz for the persistent segment log (DESIGN.md §14).
//!
//! For a freshly persisted store, every byte offset is a crash site and
//! every bit a potential flip. The contract under test:
//!
//! * [`ResultCache::open`] never panics and never errors on corrupt
//!   *content* (IO errors about the directory itself still surface);
//! * every record written **strictly before** the corruption point is
//!   recovered bit-for-bit (verified hit with the original payload);
//! * no lookup ever surfaces wrong data — an accepted record is
//!   byte-identical to what was written, anything else is a miss;
//! * the [`LoadReport`] ledger balances: `loaded + rejected ==
//!   records_scanned`.

use std::fs;
use std::path::PathBuf;

use mp_cache::{Lookup, ResultCache};
use mp_dag::graph::CacheMeta;
use mp_dag::{AccessMode, StfBuilder, TaskGraph, TaskId};
use proptest::prelude::*;

/// `n` independent writer tasks — `n` distinct cache keys.
fn wide(n: usize) -> TaskGraph {
    let mut stf = StfBuilder::new();
    let k = stf.graph_mut().register_type("K", true, true);
    for i in 0..n {
        let d = stf.graph_mut().add_data(64, format!("d{i}"));
        stf.submit(k, vec![(d, AccessMode::Write)], 1.0 + i as f64, "t");
    }
    stf.finish()
}

fn meta(g: &TaskGraph, i: usize) -> &CacheMeta {
    g.cache_meta(TaskId::from_index(i)).unwrap()
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mp-persist-fuzz-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// Deterministic payload for entry `i` of a given seed.
fn payload(seed: u64, i: usize) -> Vec<f64> {
    let len = 1 + ((mp_fault::splitmix64(seed ^ i as u64) >> 5) % 6) as usize;
    (0..len)
        .map(|j| (i * 100 + j) as f64 * 0.25 + (seed % 17) as f64)
        .collect()
}

/// Persist `n` entries, returning the segment image and the per-record
/// end boundaries (file offsets after each committed record).
fn build_store(dir: &PathBuf, g: &TaskGraph, n: usize, seed: u64) -> (Vec<u8>, Vec<u64>) {
    let cache = ResultCache::new();
    cache.persist_to(dir).unwrap();
    let seg = dir.join("seg-000000.log");
    let mut boundaries = Vec::with_capacity(n);
    for i in 0..n {
        cache.insert(meta(g, i), Some(vec![payload(seed, i)]), 64);
        boundaries.push(fs::metadata(&seg).unwrap().len());
    }
    (fs::read(&seg).unwrap(), boundaries)
}

/// Open `image` (written to a fresh dir) and check the recovery
/// contract given that bytes at `corrupt_from..` may be damaged.
/// Records ending at or before `corrupt_from` must hit bit-for-bit; no
/// record may ever come back wrong.
fn check_recovery(
    tag: &str,
    image: &[u8],
    boundaries: &[u64],
    g: &TaskGraph,
    seed: u64,
    corrupt_from: u64,
) {
    let dir = tmpdir(tag);
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("seg-000000.log"), image).unwrap();
    let (cache, report) = ResultCache::open(&dir).expect("open never fails on corrupt content");
    assert_eq!(
        report.loaded + report.rejected,
        report.records_scanned,
        "{tag}: ledger must balance: {report:?}"
    );
    for (i, &end) in boundaries.iter().enumerate() {
        let m = meta(g, i);
        match cache.lookup(m, true) {
            Lookup::Hit(e) => {
                // Whatever is served must be exactly what was written.
                assert_eq!(e.fingerprint, m.fingerprint, "{tag}: record {i}");
                assert_eq!(e.out_versions, m.out_versions, "{tag}: record {i}");
                assert_eq!(
                    e.payload.as_deref(),
                    Some(&[payload(seed, i)][..]),
                    "{tag}: record {i} served wrong bytes"
                );
            }
            Lookup::Miss if end > corrupt_from => {} // lost to corruption: allowed
            other => {
                panic!("{tag}: record {i} (ends {end}, corruption at {corrupt_from}): {other:?}")
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Truncate the store at *every* byte offset: open never panics,
    /// recovers exactly the records written strictly before the cut,
    /// and serves nothing corrupted.
    #[test]
    fn prop_truncation_at_every_offset_recovers_the_prefix(
        seed in 0u64..1000,
        n in 2usize..7,
    ) {
        let g = wide(n);
        let dir = tmpdir(&format!("trunc-src-{seed}-{n}"));
        let (image, boundaries) = build_store(&dir, &g, n, seed);
        for cut in 0..=image.len() {
            check_recovery(
                &format!("trunc-{seed}-{n}-{cut}"),
                &image[..cut],
                &boundaries,
                &g,
                seed,
                cut as u64,
            );
        }
    }

    /// Flip one random bit (offset and bit derived from the seed):
    /// open never panics, the ledger balances, and any record that
    /// still hits is bit-identical to what was written.
    #[test]
    fn prop_single_bit_flip_never_serves_wrong_data(
        seed in 0u64..4000,
        n in 2usize..7,
    ) {
        let g = wide(n);
        let dir = tmpdir(&format!("flip-src-{seed}-{n}"));
        let (mut image, boundaries) = build_store(&dir, &g, n, seed);
        let off = (mp_fault::splitmix64(seed ^ 0xF11F) % image.len() as u64) as usize;
        let bit = (mp_fault::splitmix64(seed ^ 0xB117) % 8) as u8;
        image[off] ^= 1 << bit;
        // A flipped bit corrupts the record containing `off` (and, if it
        // hits a length field, potentially everything after it).
        check_recovery(
            &format!("flip-{seed}-{n}"),
            &image,
            &boundaries,
            &g,
            seed,
            off as u64,
        );
    }
}
