//! The scheduler trait and the view of runtime state exposed to it.

use mp_dag::graph::TaskGraph;
use mp_dag::ids::{DataId, TaskId};
use mp_perfmodel::Estimator;
use mp_platform::types::{MemNodeId, Platform, WorkerId};

/// Where do valid replicas of each data handle currently live?
///
/// Implemented by the engines; queried by data-aware schedulers (Dmda's
/// transfer estimates, MultiPrio's LS_SDH² locality score).
pub trait DataLocator {
    /// Is a valid replica of `d` present on node `m`?
    fn is_on(&self, d: DataId, m: MemNodeId) -> bool;

    /// All nodes holding a valid replica (at least the home node before
    /// first write). Order is unspecified.
    fn holders(&self, d: DataId) -> Vec<MemNodeId>;
}

/// Engine-side load information.
pub trait LoadInfo {
    /// Estimated time (µs, engine clock) at which worker `w` finishes the
    /// task it is currently running; `now` or earlier when idle. Does not
    /// include tasks queued inside the scheduler.
    fn busy_until(&self, w: WorkerId) -> f64;
}

/// A read-only snapshot handed to every scheduler call.
pub struct SchedView<'a> {
    /// Graph + platform + perf model, with derived δ queries.
    pub est: Estimator<'a>,
    /// Data replica locations.
    pub loc: &'a dyn DataLocator,
    /// Worker load.
    pub load: &'a dyn LoadInfo,
    /// Current engine time in µs.
    pub now: f64,
}

impl<'a> SchedView<'a> {
    /// The task graph.
    pub fn graph(&self) -> &'a TaskGraph {
        self.est.graph()
    }

    /// The platform.
    pub fn platform(&self) -> &'a Platform {
        self.est.platform()
    }

    /// Can worker `w` execute task `t`?
    pub fn worker_can_exec(&self, t: TaskId, w: WorkerId) -> bool {
        self.est.can_exec(t, self.platform().worker(w).arch)
    }

    /// Typed feasibility check of a pop decision: engines call this on
    /// every task a scheduler hands out, and reject infeasible
    /// assignments with an [`InfeasibleAssignment`] instead of panicking
    /// deep inside their staging paths. A scheduler that trips this has
    /// violated the trait contract ("pop must only return tasks the
    /// requesting worker can execute").
    pub fn validate_assignment(&self, t: TaskId, w: WorkerId) -> Result<(), InfeasibleAssignment> {
        if self.worker_can_exec(t, w) {
            Ok(())
        } else {
            Err(InfeasibleAssignment { task: t, worker: w })
        }
    }

    /// δ(t, arch of w), `None` when the worker cannot run the task.
    pub fn delta_on_worker(&self, t: TaskId, w: WorkerId) -> Option<f64> {
        self.est.delta(t, self.platform().worker(w).arch)
    }

    /// Bytes of `t`'s data already valid on node `m` (any access mode).
    pub fn local_bytes(&self, t: TaskId, m: MemNodeId) -> u64 {
        let g = self.graph();
        g.task(t)
            .accesses
            .iter()
            .filter(|a| self.loc.is_on(a.data, m))
            .map(|a| g.data_desc(a.data).size)
            .sum()
    }

    /// Estimated time to fetch all of `t`'s *read* data missing on `m`,
    /// using the fastest valid holder for each handle.
    pub fn fetch_time(&self, t: TaskId, m: MemNodeId) -> f64 {
        let g = self.graph();
        let p = self.platform();
        let mut total = 0.0;
        for d in g.task(t).reads() {
            if self.loc.is_on(d, m) {
                continue;
            }
            let size = g.data_desc(d).size;
            let best = self
                .loc
                .holders(d)
                .iter()
                .map(|&h| p.transfer_time(size, h, m))
                .fold(f64::INFINITY, f64::min);
            if best.is_finite() {
                total += best;
            }
        }
        total
    }
}

/// A scheduler handed a task to a worker whose architecture cannot run
/// it — the engine refuses the assignment (see
/// [`SchedView::validate_assignment`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InfeasibleAssignment {
    /// The misrouted task.
    pub task: TaskId,
    /// The worker it was handed to.
    pub worker: WorkerId,
}

impl std::fmt::Display for InfeasibleAssignment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scheduler assigned {:?} to incapable worker {:?}",
            self.task, self.worker
        )
    }
}

impl std::error::Error for InfeasibleAssignment {}

/// Feedback events delivered to the scheduler by the engine.
#[derive(Clone, Copy, Debug)]
pub enum SchedEvent {
    /// A popped task started executing (transfers done).
    TaskStarted {
        /// The task.
        t: TaskId,
        /// The executing worker.
        w: WorkerId,
    },
    /// A task finished; `elapsed_us` is the measured execution time.
    TaskFinished {
        /// The task.
        t: TaskId,
        /// The executing worker.
        w: WorkerId,
        /// Measured execution time in µs.
        elapsed_us: f64,
    },
}

/// A scheduler-initiated data movement request (Dmda-family prefetching).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchReq {
    /// The handle to replicate.
    pub data: DataId,
    /// The destination memory node.
    pub node: MemNodeId,
}

/// A dynamic scheduler, driven at StarPU's PUSH / POP points.
///
/// Engines guarantee:
/// * `push` is called once per task when it becomes ready; a task comes
///   back through [`Self::push_retry`] only after a failed execution
///   attempt or a worker death invalidated a previous pop;
/// * `pop(w)` is only called when `w` is idle, and never after
///   [`Self::worker_disabled`] quarantined `w`;
/// * a task returned by `pop` either executes to completion or returns
///   via `push_retry` — a popped task is never silently dropped;
/// * `pop` must only return tasks the requesting worker can execute.
///
/// `pop` returning `None` does **not** imply the scheduler is empty: a
/// scheduler may hold back a task from an ill-suited worker (MultiPrio's
/// `pop_condition`). Engines must re-poll on the next state change.
pub trait Scheduler: Send {
    /// Short stable identifier (`"dmdas"`, `"multiprio"`, ...).
    fn name(&self) -> &'static str;

    /// A task became ready. `releaser` is the worker whose task completion
    /// released it (`None` for initially-ready tasks) — used by
    /// work-stealing schedulers for locality.
    fn push(&mut self, t: TaskId, releaser: Option<WorkerId>, view: &SchedView<'_>);

    /// Idle worker `w` requests a task.
    fn pop(&mut self, w: WorkerId, view: &SchedView<'_>) -> Option<TaskId>;

    /// Number of pushed-but-not-popped tasks (engine sanity checks).
    fn pending(&self) -> usize;

    /// Worker `w` died (or was quarantined): the engine will never call
    /// `pop(w)` again, and any task previously mapped to `w` internally
    /// must become reachable from the surviving workers. The default is
    /// a no-op, correct for every policy whose queues are shared or
    /// stealable; policies with *private* per-worker mappings (the
    /// deque-model family, MultiPrio's per-node heaps) must override
    /// this to drain and remap.
    fn worker_disabled(&mut self, _w: WorkerId, _view: &SchedView<'_>) {}

    /// Re-enqueue task `t` after a failed execution attempt (`attempt`
    /// failures so far) or a worker death. The default funnels into
    /// [`Self::push`] with no releaser, which every policy already
    /// handles; override only to treat retries specially.
    fn push_retry(&mut self, t: TaskId, _attempt: u32, view: &SchedView<'_>) {
        self.push(t, None, view);
    }

    /// Execution feedback (default: ignored).
    fn feedback(&mut self, _ev: &SchedEvent, _view: &SchedView<'_>) {}

    /// Whether this policy consumes [`SchedEvent`] feedback. Concurrent
    /// front-ends skip event delivery (and its synchronization) entirely
    /// when `false` — the default, matching the no-op [`Self::feedback`].
    /// Override to `true` alongside any real `feedback` implementation.
    fn consumes_feedback(&self) -> bool {
        false
    }

    /// Drain prefetch requests accumulated since the last call (Dmda
    /// family issues them at push time; default: none).
    fn drain_prefetches(&mut self) -> Vec<PrefetchReq> {
        let mut out = Vec::new();
        self.drain_prefetches_into(&mut out);
        out
    }

    /// Like [`Self::drain_prefetches`], appending into a caller-provided
    /// buffer so per-event engine loops can reuse one allocation. The
    /// default matches the default `emits_prefetches`: nothing to drain.
    fn drain_prefetches_into(&mut self, _out: &mut Vec<PrefetchReq>) {}

    /// Whether this policy ever emits prefetch requests. Front-ends skip
    /// the [`Self::drain_prefetches`] sweep when `false` — the default,
    /// matching the empty `drain_prefetches`.
    fn emits_prefetches(&self) -> bool {
        false
    }

    /// Policy-internal observability counters (hold-backs, evictions,
    /// push-plan-arena hits, heap compactions, ...). Engines add their
    /// own pop/push/prefetch accounting on top and surface the merged
    /// snapshot on `SimResult` / `RunReport`. Meaningful only when built
    /// with `--features obs`; the default is all-zeros either way.
    fn counters(&self) -> mp_trace::CounterSnapshot {
        mp_trace::CounterSnapshot::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Fixture;
    use mp_dag::AccessMode;

    #[test]
    fn view_local_bytes_and_fetch_time() {
        let mut fx = Fixture::two_arch();
        let d_big = fx.graph.add_data(1_000_000, "big");
        let d_small = fx.graph.add_data(1_000, "small");
        let k = fx.both;
        let t = fx.graph.add_task(
            k,
            vec![(d_big, AccessMode::Read), (d_small, AccessMode::Read)],
            1.0,
            "t",
        );
        // big is on the GPU node, small only in RAM.
        fx.locator.place(d_big, MemNodeId(1));
        fx.locator.place(d_big, MemNodeId(0));
        fx.locator.place(d_small, MemNodeId(0));
        let view = fx.view();
        assert_eq!(view.local_bytes(t, MemNodeId(1)), 1_000_000);
        assert_eq!(view.local_bytes(t, MemNodeId(0)), 1_001_000);
        // Fetching to GPU only needs the small handle moved.
        let ft = view.fetch_time(t, MemNodeId(1));
        let expected = view
            .platform()
            .transfer_time(1_000, MemNodeId(0), MemNodeId(1));
        assert!((ft - expected).abs() < 1e-9);
        // Everything already in RAM: free.
        assert_eq!(view.fetch_time(t, MemNodeId(0)), 0.0);
    }

    #[test]
    fn validate_assignment_rejects_incapable_worker() {
        let mut fx = Fixture::two_arch();
        let d = fx.graph.add_data(8, "d");
        let cpu_only = fx.cpu_only;
        let t = fx
            .graph
            .add_task(cpu_only, vec![(d, AccessMode::Read)], 1.0, "t");
        let view = fx.view();
        let p = view.platform();
        // Worker 0 is a CPU in the two_arch fixture; the last worker is
        // the GPU, which has no implementation of a CPU-only kernel.
        let cpu = WorkerId(0);
        let gpu = WorkerId((p.worker_count() - 1) as u32);
        assert!(view.validate_assignment(t, cpu).is_ok());
        let err = view.validate_assignment(t, gpu).unwrap_err();
        assert_eq!(
            err,
            InfeasibleAssignment {
                task: t,
                worker: gpu
            }
        );
        assert!(err.to_string().contains("incapable worker"));
    }
}
