//! HeteroPrio (Agullo et al. [3]) with automatic priorities (Flint et
//! al. [9]), paper Sec. II.
//!
//! Affinity-based: ready tasks are binned into *buckets, one per task
//! type*. Each architecture ranks the buckets by the type's measured
//! GPU-vs-CPU speedup: GPU workers serve buckets in *descending* speedup
//! order (take what they accelerate most), CPU workers in *ascending*
//! order (take what loses least by staying on the host). This is the
//! "priority per type of task" design whose per-type granularity the
//! paper identifies as MultiPrio's motivating limitation.
//!
//! The automatic variant computes the per-type speedups online from the
//! performance model as tasks are pushed (a running mean), so no user
//! input is required — matching how the paper runs it.

use std::collections::VecDeque;

use mp_dag::ids::{TaskId, TaskTypeId};
use mp_platform::types::{ArchClass, WorkerId};

use crate::api::{SchedView, Scheduler};

#[derive(Debug, Default)]
struct Bucket {
    queue: VecDeque<TaskId>,
    /// Running mean of δ_cpu/δ_gpu for tasks of this type; `f64::INFINITY`
    /// for GPU-only types, `0.0` for CPU-only ones.
    speedup_sum: f64,
    speedup_n: u64,
    gpu_only: bool,
    cpu_only: bool,
}

impl Bucket {
    fn speedup(&self) -> f64 {
        if self.gpu_only {
            f64::INFINITY
        } else if self.cpu_only || self.speedup_n == 0 {
            0.0
        } else {
            self.speedup_sum / self.speedup_n as f64
        }
    }
}

/// Bucket-per-type scheduler with per-arch bucket orderings.
#[derive(Debug, Default)]
pub struct HeteroPrioScheduler {
    buckets: Vec<Bucket>,
    pending: usize,
    /// Cached bucket orders per class, recomputed only when a push moved
    /// some bucket's speedup estimate (`orders_dirty`).
    cpu_order: Vec<usize>,
    gpu_order: Vec<usize>,
    orders_dirty: bool,
    /// Quarantined workers (worker failure): the backlog guard must not
    /// reserve work for dead "favored" workers.
    disabled: Vec<bool>,
    /// Push-path scratch for `archs_by_delta_into`.
    archs: Vec<(mp_platform::types::ArchId, f64)>,
}

impl HeteroPrioScheduler {
    /// Stealing threshold: a worker leaves a bucket favoring the other
    /// class by at least this factor to the favored workers unless the
    /// bucket is backlogged (see `pop`).
    const STEAL_SLOWDOWN_LIMIT: f64 = 4.0;

    /// New empty scheduler; priorities are learned automatically.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, tt: TaskTypeId) {
        if self.buckets.len() <= tt.index() {
            self.buckets.resize_with(tt.index() + 1, Bucket::default);
        }
    }

    /// Recompute the cached bucket orders: GPUs scan descending speedup,
    /// CPUs ascending. Ties break on bucket index, so the comparators are
    /// total and `sort_unstable_by` (which never allocates) is
    /// deterministic.
    fn refresh_orders(&mut self) {
        let buckets = &self.buckets;
        self.gpu_order.clear();
        self.gpu_order.extend(0..buckets.len());
        self.gpu_order.sort_unstable_by(|&a, &b| {
            buckets[b]
                .speedup()
                .total_cmp(&buckets[a].speedup())
                .then(a.cmp(&b))
        });
        self.cpu_order.clear();
        self.cpu_order.extend(0..buckets.len());
        self.cpu_order.sort_unstable_by(|&a, &b| {
            buckets[a]
                .speedup()
                .total_cmp(&buckets[b].speedup())
                .then(a.cmp(&b))
        });
        self.orders_dirty = false;
    }
}

impl Scheduler for HeteroPrioScheduler {
    fn name(&self) -> &'static str {
        "heteroprio"
    }

    fn push(&mut self, t: TaskId, _releaser: Option<WorkerId>, view: &SchedView<'_>) {
        let tt = view.graph().task(t).ttype;
        self.ensure(tt);
        // Update the type's affinity estimate from this task's deltas.
        let mut archs = std::mem::take(&mut self.archs);
        view.est.archs_by_delta_into(t, &mut archs);
        let bucket = &mut self.buckets[tt.index()];
        let cpu = archs
            .iter()
            .find(|&&(a, _)| view.platform().arch(a).class == ArchClass::Cpu)
            .map(|&(_, d)| d);
        let gpu = archs
            .iter()
            .find(|&&(a, _)| view.platform().arch(a).class == ArchClass::Gpu)
            .map(|&(_, d)| d);
        match (cpu, gpu) {
            (Some(c), Some(g)) => {
                bucket.speedup_sum += c / g;
                bucket.speedup_n += 1;
            }
            (None, Some(_)) => bucket.gpu_only = true,
            (Some(_), None) => bucket.cpu_only = true,
            (None, None) => panic!("task {t:?} executable nowhere"),
        }
        bucket.queue.push_back(t);
        self.archs = archs;
        self.orders_dirty = true;
        self.pending += 1;
    }

    fn pop(&mut self, w: WorkerId, view: &SchedView<'_>) -> Option<TaskId> {
        let platform = view.platform();
        let class = platform.arch(platform.worker(w).arch).class;
        if self.orders_dirty {
            self.refresh_orders();
        }
        // *Alive* worker counts per class, for the backlog guard: a dead
        // favored worker can no longer take the work it was owed.
        let disabled = &self.disabled;
        let workers_of = |c: ArchClass| {
            platform
                .workers()
                .iter()
                .enumerate()
                .filter(|&(i, x)| {
                    platform.arch(x.arch).class == c && !disabled.get(i).copied().unwrap_or(false)
                })
                .count()
        };
        for k in 0..self.buckets.len() {
            let b = match class {
                ArchClass::Gpu => self.gpu_order[k],
                ArchClass::Cpu => self.cpu_order[k],
            };
            // Buckets are homogeneous in type, so executability is a
            // per-bucket property: check the front only.
            let Some(&front) = self.buckets[b].queue.front() else {
                continue;
            };
            if !view.worker_can_exec(front, w) {
                continue;
            }
            // Backlog guard (HeteroPrio's slow-worker protection, [3, 20]):
            // a worker only *steals* from a bucket strongly favoring the
            // other class when that bucket holds more work than the
            // favored workers can start soon — otherwise a slow worker
            // stretches the makespan with a task the fast ones would have
            // taken momentarily.
            let speedup = self.buckets[b].speedup();
            let (favored, ratio) = if speedup >= 1.0 {
                (ArchClass::Gpu, speedup)
            } else {
                (ArchClass::Cpu, 1.0 / speedup.max(1e-12))
            };
            if favored != class && ratio >= Self::STEAL_SLOWDOWN_LIMIT {
                let fav_workers = workers_of(favored);
                if fav_workers > 0 && self.buckets[b].queue.len() <= 2 * fav_workers {
                    continue;
                }
            }
            self.pending -= 1;
            return self.buckets[b].queue.pop_front();
        }
        None
    }

    fn pending(&self) -> usize {
        self.pending
    }

    fn worker_disabled(&mut self, w: WorkerId, view: &SchedView<'_>) {
        let n = view.platform().worker_count();
        if self.disabled.len() < n {
            self.disabled.resize(n, false);
        }
        self.disabled[w.index()] = true;
        // Buckets are shared across workers — nothing to drain.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Fixture;

    #[test]
    fn gpu_takes_accelerated_cpu_takes_flat() {
        let mut fx = Fixture::two_arch();
        // Add a second two-impl kernel with no GPU advantage.
        let flat = fx.graph.register_type("FLAT", true, true);
        fx.model = mp_perfmodel::TableModel::builder()
            .set(
                "BOTH",
                mp_platform::types::ArchClass::Cpu,
                mp_perfmodel::TimeFn::Const(100.0),
            )
            .set(
                "BOTH",
                mp_platform::types::ArchClass::Gpu,
                mp_perfmodel::TimeFn::Const(10.0),
            )
            .set(
                "FLAT",
                mp_platform::types::ArchClass::Cpu,
                mp_perfmodel::TimeFn::Const(20.0),
            )
            .set(
                "FLAT",
                mp_platform::types::ArchClass::Gpu,
                mp_perfmodel::TimeFn::Const(20.0),
            )
            .build();
        let t_acc = fx.add_task(fx.both, 64, "acc");
        let t_flat = fx.add_task(flat, 64, "flat");
        let view = fx.view();
        let (c0, _, g0) = fx.workers();
        let mut s = HeteroPrioScheduler::new();
        s.push(t_acc, None, &view);
        s.push(t_flat, None, &view);
        assert_eq!(s.pop(g0, &view), Some(t_acc), "gpu prefers the 10x bucket");
        assert_eq!(s.pop(c0, &view), Some(t_flat), "cpu prefers the 1x bucket");
    }

    #[test]
    fn single_impl_types_pin_to_their_arch_order() {
        let mut fx = Fixture::two_arch();
        let tc = fx.add_task(fx.cpu_only, 64, "c");
        let tg = fx.add_task(fx.gpu_only, 64, "g");
        let tb = fx.add_task(fx.both, 64, "b");
        let view = fx.view();
        let (c0, _, g0) = fx.workers();
        let mut s = HeteroPrioScheduler::new();
        for t in [tc, tg, tb] {
            s.push(t, None, &view);
        }
        // CPU order: cpu-only (0) < both (10) < gpu-only (inf).
        assert_eq!(s.pop(c0, &view), Some(tc));
        // GPU order: gpu-only first.
        assert_eq!(s.pop(g0, &view), Some(tg));
        // Both workers can fall back to the shared bucket.
        assert_eq!(s.pop(g0, &view), Some(tb));
        assert_eq!(s.pop(c0, &view), None);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn backlog_guard_holds_then_releases_cpu_stealing() {
        let mut fx = Fixture::two_arch();
        // BOTH is 10× faster on the single GPU worker: a lone task is
        // reserved for it (the guard), but a backlog of more than
        // 2 × |gpu workers| opens the bucket to CPU stealing.
        let lone = fx.add_task(fx.both, 64, "lone");
        let view = fx.view();
        let (c0, ..) = fx.workers();
        let mut s = HeteroPrioScheduler::new();
        s.push(lone, None, &view);
        assert_eq!(s.pop(c0, &view), None, "guard protects a short queue");
        let more: Vec<_> = (0..3)
            .map(|i| fx.add_task(fx.both, 64, &format!("m{i}")))
            .collect();
        let view = fx.view();
        let mut s = HeteroPrioScheduler::new();
        s.push(lone, None, &view);
        for &t in &more {
            s.push(t, None, &view);
        }
        // 4 tasks > 2 × 1 gpu worker: the CPU may now help.
        assert_eq!(s.pop(c0, &view), Some(lone));
    }
}
