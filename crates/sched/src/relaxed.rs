//! MultiQueue-style relaxed priority front-end.
//!
//! [`ShardedAdapter`](crate::concurrent::ShardedAdapter) removes the
//! global lock by partitioning a *policy* into per-shard instances, but
//! each shard is still a blocking mutex around an arbitrary stateful
//! scheduler: a preempted lock holder convoys every worker that needs
//! that shard, and stateful policies drag a sequenced event channel
//! behind them. For the pop-heavy regime the paper's evaluation cares
//! about there is a cheaper point in the design space, due to Postnikova
//! et al. (*Multi-Queues Can Be State-of-the-Art Priority Schedulers*,
//! arXiv 2109.00657) and Wimmer et al. (arXiv 1312.2501):
//!
//! * keep `c·P` tiny *sequential* priority queues (`P` workers, `c`
//!   queues per worker), each guarded by a **try-lock** that is never
//!   spun on — a busy queue is simply skipped;
//! * **push** to a queue of the releasing worker's block (locality), or
//!   a random queue, falling through on try-lock failure;
//! * **pop** by the classic two-choice rule: sample two distinct
//!   queues, compare their *published tops* as the existing u64-encoded
//!   scores (PR 2's sign-flip encoding makes "better" a plain integer
//!   `>`), and take the best executable task of the better queue.
//!
//! The price is *relaxation*: a pop may return a task that is not the
//! global best. The literature bounds the expected **rank error** (how
//! many strictly-better tasks were pending) by `O(c·P)`; the optional
//! [`RankTracker`] measures it exactly against the oracle order, and
//! the differential auditor reports it alongside makespan.
//!
//! Two implementations share the same structure and randomness so the
//! auditor can mirror the runtime in virtual time:
//!
//! * [`RelaxedMultiQueue`] — the engine-facing concurrent front-end
//!   (implements [`ConcurrentScheduler`]);
//! * [`RelaxedSeqScheduler`] — a deterministic sequential twin
//!   (implements [`Scheduler`]) driven by the simulator.
//!
//! Ordering semantics match [`EagerPrioScheduler`](crate::prio::EagerPrioScheduler):
//! descending user priority, FIFO within a priority level — that exact
//! policy is the rank oracle.

use std::collections::{BTreeSet, BinaryHeap};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use mp_dag::ids::TaskId;
use mp_platform::types::WorkerId;
use mp_trace::obs::obs_enabled;
use mp_trace::RankStats;

use crate::api::{PrefetchReq, SchedEvent, SchedView, Scheduler};
use crate::concurrent::ConcurrentScheduler;

/// splitmix64 golden-ratio increment.
pub(crate) const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Whitening constant giving the *second* choice its own stream: mixing
/// `state ^ SPLITMIX_ALT` is statistically independent of mixing
/// `state`, where reusing the high/low halves of one draw is not (the
/// original sharded two-choice bug, see `two_distinct`).
pub(crate) const SPLITMIX_ALT: u64 = 0xD1B5_4A32_D192_ED03;

/// splitmix64 output mix: state in, well-distributed u64 out.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Two *distinct* uniform indices in `[0, n)` (requires `n >= 2`),
/// derived from one splitmix64 state draw through two independent
/// streams. The second index is sampled from the `n - 1` values other
/// than the first, so the pair is never degenerate — taking the two
/// 32-bit halves of a single draw (the old scheme) collides with
/// probability `1/n` and repeatedly probes one shard under small `n`.
#[inline]
pub(crate) fn two_distinct(state: u64, n: usize) -> (usize, usize) {
    debug_assert!(n >= 2);
    let a = (mix64(state) % n as u64) as usize;
    let mut b = (mix64(state ^ SPLITMIX_ALT) % (n as u64 - 1)) as usize;
    if b >= a {
        b += 1;
    }
    (a, b)
}

/// Pack (user priority, submission sequence) into one u64 where plain
/// integer `>` means "schedule first": high word is the sign-flipped
/// priority (same transform as `mp_core::heap`'s `key_part`, specialised
/// to i32), low word the bit-complemented sequence so earlier
/// submissions win ties. This is exactly the order
/// [`EagerPrioScheduler`](crate::prio::EagerPrioScheduler) serves.
#[inline]
pub fn score_key(user_priority: i64, seq: u32) -> u64 {
    let p = user_priority.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
    let hi = (p as u32) ^ 0x8000_0000;
    ((hi as u64) << 32) | (!seq as u64)
}

/// One queue entry. Keys are unique (the sequence number is global), so
/// the derived lexicographic order never reaches the tiebreak.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    key: u64,
    task: TaskId,
}

/// Configuration of the relaxed front-end.
#[derive(Clone, Copy, Debug)]
pub struct RelaxedConfig {
    /// Queues per worker (`c`); total queues are `c · workers`. The
    /// literature's sweet spot is 2–4: more queues cut contention but
    /// grow the expected rank error linearly.
    pub queues_per_worker: usize,
    /// Seed for queue selection randomness. The sequential twin is
    /// bit-deterministic in it; the concurrent front-end additionally
    /// depends on thread interleaving.
    pub seed: u64,
    /// Maintain an exact oracle mirror and measure per-pop rank error.
    /// Costs one `BTreeSet` mutex per push/pop — an audit instrument,
    /// not a production setting.
    pub track_rank: bool,
}

impl Default for RelaxedConfig {
    fn default() -> Self {
        Self {
            queues_per_worker: 2,
            seed: 0xC0FF_EE00_D15C_0B13,
            track_rank: false,
        }
    }
}

/// Exact-oracle staleness probe: mirrors the live task set in a total
/// order and reports, per pop, how many strictly-better tasks were
/// pending. Shared by both relaxed implementations; under concurrency
/// the measurement is a linearization-point approximation (the mirror
/// and the queues are not updated atomically together), which is the
/// standard methodology for rank-error plots.
pub struct RankTracker {
    inner: Mutex<RankInner>,
}

#[derive(Default)]
struct RankInner {
    live: BTreeSet<(u64, TaskId)>,
    stats: RankStats,
}

impl Default for RankTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl RankTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(RankInner::default()),
        }
    }

    /// A task entered the structure under `key`.
    pub fn on_push(&self, key: u64, t: TaskId) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.live.insert((key, t));
    }

    /// A task left the structure; records its rank (number of pending
    /// entries with a strictly larger key). O(rank) per pop.
    pub fn on_pop(&self, key: u64, t: TaskId) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let rank = g.live.iter().rev().take_while(|&&(k, _)| k > key).count() as u64;
        g.live.remove(&(key, t));
        g.stats.record(rank);
    }

    /// Snapshot of the accumulated statistics.
    pub fn stats(&self) -> RankStats {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .stats
            .clone()
    }
}

/// `top` hint value for "this queue looked empty". Real keys of
/// practical tasks never hit 0 (it would need priority `i32::MIN` *and*
/// four billion prior submissions), and the hint is only an ordering
/// heuristic — emptiness truth lives in the `len` atomic.
const TOP_EMPTY: u64 = 0;

/// One sequential queue: a tiny binary heap behind a mutex that is only
/// ever *try*-locked on the hot path, plus published metadata readable
/// without the lock.
struct SeqQueue {
    state: Mutex<QueueState>,
    /// Entries currently queued (emptiness source of truth).
    len: AtomicUsize,
    /// Key of the current best entry (sampling hint, updated under the
    /// lock; `TOP_EMPTY` when empty).
    top: AtomicU64,
    /// Observability (dormant unless `--features obs`): successful pops
    /// from this queue / pops by a worker whose block is elsewhere.
    pops: AtomicU64,
    steals: AtomicU64,
}

impl SeqQueue {
    fn new() -> Self {
        Self {
            state: Mutex::new(QueueState::default()),
            len: AtomicUsize::new(0),
            top: AtomicU64::new(TOP_EMPTY),
            pops: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        }
    }
}

#[derive(Default)]
struct QueueState {
    heap: BinaryHeap<Entry>,
    /// Reused buffer for the executable-task scan (keeps steady-state
    /// pops allocation-free).
    scratch: Vec<Entry>,
}

/// The concurrent relaxed multi-queue (see module docs).
pub struct RelaxedMultiQueue {
    queues: Vec<SeqQueue>,
    workers: usize,
    c: usize,
    /// Global submission sequence (FIFO tiebreak within a priority).
    seq: AtomicU32,
    /// splitmix64 state for queue selection.
    rng: AtomicU64,
    /// Try-lock acquisitions that failed and fell through (dormant
    /// unless `--features obs`).
    failed_trylocks: AtomicU64,
    rank: Option<RankTracker>,
}

/// Extra two-choice rounds a pop attempts before sweeping.
const POP_DRAWS: usize = 2;

impl RelaxedMultiQueue {
    /// Build `cfg.queues_per_worker · workers` queues.
    pub fn new(workers: usize, cfg: RelaxedConfig) -> Self {
        let workers = workers.max(1);
        let c = cfg.queues_per_worker.max(1);
        Self {
            queues: (0..c * workers).map(|_| SeqQueue::new()).collect(),
            workers,
            c,
            seq: AtomicU32::new(0),
            rng: AtomicU64::new(cfg.seed),
            failed_trylocks: AtomicU64::new(0),
            rank: cfg.track_rank.then(RankTracker::new),
        }
    }

    /// Total queue count (`c · P`).
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Rank-error statistics, when tracking was enabled.
    pub fn rank_stats(&self) -> Option<RankStats> {
        self.rank.as_ref().map(|r| r.stats())
    }

    #[inline]
    fn draw(&self) -> u64 {
        self.rng
            .fetch_add(SPLITMIX_GAMMA, Ordering::Relaxed)
            .wrapping_add(SPLITMIX_GAMMA)
    }

    /// First queue index of worker `w`'s block of `c` queues.
    #[inline]
    fn block_start(&self, w: WorkerId) -> usize {
        (w.index() % self.workers) * self.c
    }

    #[inline]
    fn in_block(&self, i: usize, w: WorkerId) -> bool {
        let s = self.block_start(w);
        i >= s && i < s + self.c
    }

    /// Insert under an already-held queue lock; publishes len and top.
    fn insert_locked(q: &SeqQueue, qs: &mut QueueState, e: Entry) {
        qs.heap.push(e);
        q.top.store(
            qs.heap.peek().map_or(TOP_EMPTY, |b| b.key),
            Ordering::Release,
        );
        q.len.fetch_add(1, Ordering::AcqRel);
    }

    fn push_entry(&self, e: Entry, releaser: Option<WorkerId>) {
        if let Some(tr) = &self.rank {
            tr.on_push(e.key, e.task);
        }
        let n = self.queues.len();
        let r = self.draw();
        // Locality: a released task lands on a random queue of the
        // releasing worker's block, so producer chains keep their block
        // warm; initial pushes scatter uniformly.
        let start = match releaser {
            Some(w) => self.block_start(w) + (mix64(r) % self.c as u64) as usize,
            None => (mix64(r) % n as u64) as usize,
        };
        // Try-lock, falling through to the next queue on failure —
        // never spin on a held lock. Poison is sticky on a mutex, so a
        // once-poisoned queue must be recovered here rather than
        // skipped as busy: treating it as `WouldBlock` forever would
        // starve the queue of pushes after one contained panic.
        for off in 0..n {
            let q = &self.queues[(start + off) % n];
            let got = match q.state.try_lock() {
                Ok(g) => Some(g),
                Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
                Err(std::sync::TryLockError::WouldBlock) => None,
            };
            if let Some(mut qs) = got {
                Self::insert_locked(q, &mut qs, e);
                return;
            }
            if obs_enabled() {
                self.failed_trylocks.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Every queue was momentarily held (only possible with more
        // pushers than queues): block once rather than spin. A poisoned
        // queue is recovered, not propagated: heap and published
        // metadata are only mutated together under the lock, so the
        // state a panicking holder left behind is a consistent
        // push/pop boundary (the engine's `catch_unwind` already turned
        // the panic itself into `KernelPanicked`).
        let q = &self.queues[start % n];
        let mut qs = q.state.lock().unwrap_or_else(|p| p.into_inner());
        Self::insert_locked(q, &mut qs, e);
    }

    /// Pop the best entry of queue `i` executable by `w`. `blocking`
    /// selects try-lock (hot path: a held queue is skipped, counted)
    /// versus a real lock (final drain pass only). Returns `None`
    /// without disturbing the queue when it holds nothing `w` can run.
    fn pop_from(
        &self,
        i: usize,
        w: WorkerId,
        view: &SchedView<'_>,
        blocking: bool,
    ) -> Option<TaskId> {
        let q = &self.queues[i];
        if q.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        // Poisoned queues are recovered (see `push_entry`): cascading
        // the panic here would abort every subsequent pop of surviving
        // workers instead of letting the run drain to `KernelPanicked`.
        let mut qs = if blocking {
            q.state.lock().unwrap_or_else(|p| p.into_inner())
        } else {
            match q.state.try_lock() {
                Ok(g) => g,
                Err(std::sync::TryLockError::WouldBlock) => {
                    if obs_enabled() {
                        self.failed_trylocks.fetch_add(1, Ordering::Relaxed);
                    }
                    return None;
                }
                Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            }
        };
        let mut found = None;
        while let Some(e) = qs.heap.pop() {
            if view.worker_can_exec(e.task, w) {
                found = Some(e);
                break;
            }
            qs.scratch.push(e);
        }
        // Restore skipped entries (qs.scratch stays allocated).
        while let Some(e) = qs.scratch.pop() {
            qs.heap.push(e);
        }
        q.top.store(
            qs.heap.peek().map_or(TOP_EMPTY, |b| b.key),
            Ordering::Release,
        );
        let e = found?;
        q.len.fetch_sub(1, Ordering::AcqRel);
        drop(qs);
        if obs_enabled() {
            q.pops.fetch_add(1, Ordering::Relaxed);
            if !self.in_block(i, w) {
                q.steals.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(tr) = &self.rank {
            tr.on_pop(e.key, e.task);
        }
        Some(e.task)
    }
}

impl ConcurrentScheduler for RelaxedMultiQueue {
    fn name(&self) -> String {
        format!("prio+relaxed-mq{}x{}", self.c, self.workers)
    }

    fn push(&self, t: TaskId, releaser: Option<WorkerId>, view: &SchedView<'_>) {
        let key = score_key(
            view.graph().task(t).user_priority,
            self.seq.fetch_add(1, Ordering::Relaxed),
        );
        self.push_entry(Entry { key, task: t }, releaser);
    }

    fn pop(&self, w: WorkerId, view: &SchedView<'_>) -> Option<TaskId> {
        let n = self.queues.len();
        if n >= 2 {
            // Two-choice rounds: sample two distinct queues, probe the
            // one whose published top is better first.
            for _ in 0..POP_DRAWS {
                let (a, b) = two_distinct(self.draw(), n);
                let ta = self.queues[a].top.load(Ordering::Acquire);
                let tb = self.queues[b].top.load(Ordering::Acquire);
                let (first, second) = if ta >= tb { (a, b) } else { (b, a) };
                for i in [first, second] {
                    if let Some(t) = self.pop_from(i, w, view, false) {
                        return Some(t);
                    }
                }
            }
        }
        // Fallback sweep from a random start (concurrent sweepers do
        // not herd onto queue 0): try-locks first, then one blocking
        // pass so a drain can never miss the last tasks — the "spin
        // free" discipline is to block at most once, never to retry a
        // try-lock in a loop.
        let start = (mix64(self.draw()) % n as u64) as usize;
        for off in 0..n {
            if let Some(t) = self.pop_from((start + off) % n, w, view, false) {
                return Some(t);
            }
        }
        for off in 0..n {
            if let Some(t) = self.pop_from((start + off) % n, w, view, true) {
                return Some(t);
            }
        }
        None
    }

    fn feedback(&self, _ev: &SchedEvent, _view: &SchedView<'_>) {
        // Score depends only on static user priority: feedback-blind,
        // so the engine's event stream needs no synchronization here.
    }

    fn worker_disabled(&self, _w: WorkerId, _view: &SchedView<'_>) {
        // No per-worker private mappings: every queue is poppable by
        // every surviving worker, so quarantine needs no drain. (The
        // block used for push locality is a hint, not ownership — a
        // dead worker's block simply stops being preferred by pushes
        // and drains through everyone else's two-choice pops.)
    }

    fn push_retry(&self, t: TaskId, _attempt: u32, view: &SchedView<'_>) {
        // A retried task lost its releaser (the executor failed):
        // scatter like an initial push, with a fresh sequence number so
        // it re-enters FIFO order at the back of its priority level.
        self.push(t, None, view);
    }

    fn pending(&self) -> usize {
        self.queues
            .iter()
            .map(|q| q.len.load(Ordering::Acquire))
            .sum()
    }

    fn drain_prefetches(&self) -> Vec<PrefetchReq> {
        Vec::new()
    }

    fn counters(&self) -> mp_trace::CounterSnapshot {
        let mut snap = mp_trace::CounterSnapshot::default();
        if !obs_enabled() {
            return snap;
        }
        for q in &self.queues {
            snap.shard_pops.push(q.pops.load(Ordering::Relaxed));
            snap.steals.push(q.steals.load(Ordering::Relaxed));
        }
        snap.failed_trylocks = self.failed_trylocks.load(Ordering::Relaxed);
        if let Some(stats) = self.rank_stats() {
            snap.rank_max = stats.rank_max;
            snap.rank_hist = stats.hist;
        }
        snap
    }
}

/// Deterministic sequential twin of [`RelaxedMultiQueue`]: same queues,
/// same score keys, same two-choice selection from the same splitmix64
/// streams — but driven through the plain [`Scheduler`] trait, so the
/// simulator can mirror the relaxed front-end in virtual time and the
/// differential auditor can compare staleness across sides. Given equal
/// seeds and equal push/pop sequences it makes bit-identical choices.
pub struct RelaxedSeqScheduler {
    queues: Vec<BinaryHeap<Entry>>,
    scratch: Vec<Entry>,
    workers: usize,
    c: usize,
    seq: u32,
    rng: u64,
    pending: usize,
    pops: Vec<u64>,
    steals: Vec<u64>,
    rank: Option<RankTracker>,
}

impl RelaxedSeqScheduler {
    /// Twin of `RelaxedMultiQueue::new(workers, cfg)`.
    pub fn new(workers: usize, cfg: RelaxedConfig) -> Self {
        let workers = workers.max(1);
        let c = cfg.queues_per_worker.max(1);
        let n = c * workers;
        Self {
            queues: (0..n).map(|_| BinaryHeap::new()).collect(),
            scratch: Vec::new(),
            workers,
            c,
            seq: 0,
            rng: cfg.seed,
            pending: 0,
            pops: vec![0; n],
            steals: vec![0; n],
            rank: cfg.track_rank.then(RankTracker::new),
        }
    }

    /// Rank-error statistics, when tracking was enabled.
    pub fn rank_stats(&self) -> Option<RankStats> {
        self.rank.as_ref().map(|r| r.stats())
    }

    fn draw(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(SPLITMIX_GAMMA);
        self.rng
    }

    fn block_start(&self, w: WorkerId) -> usize {
        (w.index() % self.workers) * self.c
    }

    /// Best executable entry of queue `i`, or `None` (queue restored).
    fn pop_at(&mut self, i: usize, w: WorkerId, view: &SchedView<'_>) -> Option<TaskId> {
        let mut found = None;
        while let Some(e) = self.queues[i].pop() {
            if view.worker_can_exec(e.task, w) {
                found = Some(e);
                break;
            }
            self.scratch.push(e);
        }
        while let Some(e) = self.scratch.pop() {
            self.queues[i].push(e);
        }
        let e = found?;
        self.pending -= 1;
        if obs_enabled() {
            self.pops[i] += 1;
            let s = self.block_start(w);
            if i < s || i >= s + self.c {
                self.steals[i] += 1;
            }
        }
        if let Some(tr) = &self.rank {
            tr.on_pop(e.key, e.task);
        }
        Some(e.task)
    }
}

impl Scheduler for RelaxedSeqScheduler {
    fn name(&self) -> &'static str {
        "relaxed-mq"
    }

    fn push(&mut self, t: TaskId, releaser: Option<WorkerId>, view: &SchedView<'_>) {
        let key = score_key(view.graph().task(t).user_priority, self.seq);
        self.seq = self.seq.wrapping_add(1);
        let e = Entry { key, task: t };
        if let Some(tr) = &self.rank {
            tr.on_push(e.key, e.task);
        }
        let n = self.queues.len();
        let r = self.draw();
        let i = match releaser {
            Some(w) => self.block_start(w) + (mix64(r) % self.c as u64) as usize,
            None => (mix64(r) % n as u64) as usize,
        };
        self.queues[i].push(e);
        self.pending += 1;
    }

    fn pop(&mut self, w: WorkerId, view: &SchedView<'_>) -> Option<TaskId> {
        let n = self.queues.len();
        if n >= 2 {
            for _ in 0..POP_DRAWS {
                let (a, b) = two_distinct(self.draw(), n);
                let ka = self.queues[a].peek().map_or(TOP_EMPTY, |e| e.key);
                let kb = self.queues[b].peek().map_or(TOP_EMPTY, |e| e.key);
                let (first, second) = if ka >= kb { (a, b) } else { (b, a) };
                for i in [first, second] {
                    if !self.queues[i].is_empty() {
                        if let Some(t) = self.pop_at(i, w, view) {
                            return Some(t);
                        }
                    }
                }
            }
        }
        let start = (mix64(self.draw()) % n as u64) as usize;
        for off in 0..n {
            let i = (start + off) % n;
            if !self.queues[i].is_empty() {
                if let Some(t) = self.pop_at(i, w, view) {
                    return Some(t);
                }
            }
        }
        None
    }

    fn pending(&self) -> usize {
        self.pending
    }

    fn counters(&self) -> mp_trace::CounterSnapshot {
        let mut snap = mp_trace::CounterSnapshot::default();
        if !obs_enabled() {
            return snap;
        }
        snap.shard_pops = self.pops.clone();
        snap.steals = self.steals.clone();
        if let Some(stats) = self.rank_stats() {
            snap.rank_max = stats.rank_max;
            snap.rank_hist = stats.hist;
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Fixture;

    #[test]
    fn score_key_orders_priority_desc_then_fifo() {
        // Higher priority beats lower regardless of age.
        assert!(score_key(5, 100) > score_key(4, 0));
        // Within a priority, earlier submission wins.
        assert!(score_key(0, 0) > score_key(0, 1));
        // Negative priorities sort last, extremes do not wrap.
        assert!(score_key(0, 0) > score_key(-3, 0));
        assert!(score_key(i64::MAX, 0) > score_key(i64::MIN, 0));
        assert!(score_key(i64::MIN, 0) < score_key(0, u32::MAX));
    }

    #[test]
    fn two_distinct_never_degenerates_and_covers_all_pairs() {
        for n in [2usize, 3, 5, 8] {
            let mut seen = std::collections::HashSet::new();
            let mut state = 0x1234u64;
            for _ in 0..4000 {
                state = state.wrapping_add(SPLITMIX_GAMMA);
                let (a, b) = two_distinct(state, n);
                assert_ne!(a, b, "degenerate pair at n={n}");
                assert!(a < n && b < n);
                seen.insert((a, b));
            }
            // Every ordered pair should appear.
            assert_eq!(seen.len(), n * (n - 1), "pair coverage at n={n}");
        }
    }

    #[test]
    fn concurrent_queue_drains_in_relaxed_priority_order() {
        let mut fx = Fixture::two_arch();
        let lo = fx.add_task(fx.both, 8, "lo");
        let hi = fx.add_task(fx.both, 8, "hi");
        fx.graph.set_user_priority(hi, 10);
        let view = fx.view();
        let (c0, ..) = fx.workers();
        let mq = RelaxedMultiQueue::new(
            2,
            RelaxedConfig {
                track_rank: true,
                ..RelaxedConfig::default()
            },
        );
        assert_eq!(mq.queue_count(), 4);
        mq.push(lo, None, &view);
        mq.push(hi, None, &view);
        assert_eq!(mq.pending(), 2);
        let mut got = Vec::new();
        while let Some(t) = mq.pop(c0, &view) {
            got.push(t);
        }
        assert_eq!(got.len(), 2);
        assert_eq!(mq.pending(), 0);
        let stats = mq.rank_stats().unwrap();
        assert_eq!(stats.pops, 2);
        // Worst case here: `hi` popped second, one better task pending.
        assert!(stats.rank_max <= 1);
    }

    #[test]
    fn capability_filter_skips_inexecutable_tops() {
        let mut fx = Fixture::two_arch();
        let g = fx.add_task(fx.gpu_only, 8, "g");
        let c = fx.add_task(fx.cpu_only, 8, "c");
        fx.graph.set_user_priority(g, 100);
        let view = fx.view();
        let (c0, _, g0) = fx.workers();
        let mq = RelaxedMultiQueue::new(1, RelaxedConfig::default());
        mq.push(g, None, &view);
        mq.push(c, None, &view);
        // The CPU worker must get the CPU task even where the GPU task
        // tops every sampled queue.
        assert_eq!(mq.pop(c0, &view), Some(c));
        assert_eq!(mq.pop(c0, &view), None);
        assert_eq!(mq.pending(), 1);
        assert_eq!(mq.pop(g0, &view), Some(g));
        assert_eq!(mq.pending(), 0);
    }

    #[test]
    fn sequential_twin_is_deterministic() {
        let run = || {
            let mut fx = Fixture::two_arch();
            let tasks: Vec<_> = (0..32)
                .map(|i| fx.add_task(fx.both, 8, &format!("t{i}")))
                .collect();
            for (i, &t) in tasks.iter().enumerate() {
                fx.graph.set_user_priority(t, (i % 5) as i64);
            }
            let view = fx.view();
            let (c0, c1, _) = fx.workers();
            let mut s = RelaxedSeqScheduler::new(2, RelaxedConfig::default());
            for (i, &t) in tasks.iter().enumerate() {
                let releaser = if i % 3 == 0 { Some(c1) } else { None };
                s.push(t, releaser, &view);
            }
            let mut order = Vec::new();
            loop {
                let w = if order.len() % 2 == 0 { c0 } else { c1 };
                match s.pop(w, &view) {
                    Some(t) => order.push(t),
                    None => break,
                }
            }
            assert_eq!(s.pending(), 0);
            order
        };
        assert_eq!(run(), run());
    }

    /// Poison every queue mutex (and the rank tracker's) of `mq` the
    /// way a panicking lock holder would: a helper thread acquires the
    /// lock, touches nothing, and unwinds. The state it leaves behind
    /// is exactly a push/pop boundary.
    fn poison_all_queues(mq: &RelaxedMultiQueue) {
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                let guards: Vec<_> = mq.queues.iter().map(|q| q.state.lock().unwrap()).collect();
                let rank = mq.rank.as_ref().map(|tr| tr.inner.lock().unwrap());
                let _ = (&guards, &rank);
                panic!("deliberate poison");
            });
            assert!(h.join().is_err());
        });
    }

    /// Regression: a panic that unwinds while a queue mutex is held
    /// used to poison the queue and turn every subsequent push/pop into
    /// a cascade of `expect("relaxed queue poisoned")` aborts — one
    /// contained kernel panic cost every surviving worker its front
    /// end. The guards are recovered now: state is consistent at
    /// push/pop boundaries, so the structure keeps working.
    #[test]
    fn poisoned_queue_recovers_instead_of_cascading() {
        let mut fx = Fixture::two_arch();
        let a = fx.add_task(fx.both, 8, "a");
        let b = fx.add_task(fx.both, 8, "b");
        let view = fx.view();
        let (c0, ..) = fx.workers();
        let mq = RelaxedMultiQueue::new(
            1,
            RelaxedConfig {
                queues_per_worker: 1,
                track_rank: true,
                ..RelaxedConfig::default()
            },
        );
        mq.push(a, None, &view);
        poison_all_queues(&mq);
        // Every queue mutex is now poisoned; pushes and pops must still
        // drain both tasks instead of aborting.
        mq.push(b, None, &view);
        assert_eq!(mq.pending(), 2);
        let mut got = Vec::new();
        while let Some(t) = mq.pop(c0, &view) {
            got.push(t);
        }
        got.sort();
        assert_eq!(got, vec![a, b]);
        assert_eq!(mq.pending(), 0);
        // The rank tracker (poisoned alongside) keeps accounting too.
        assert_eq!(mq.rank_stats().unwrap().pops, 2);
    }

    #[test]
    fn rank_error_is_zero_for_single_queue() {
        // c = 1, one worker: a single sequential queue is the oracle.
        let mut fx = Fixture::two_arch();
        let tasks: Vec<_> = (0..16)
            .map(|i| fx.add_task(fx.both, 8, &format!("t{i}")))
            .collect();
        for (i, &t) in tasks.iter().enumerate() {
            fx.graph.set_user_priority(t, (i % 3) as i64);
        }
        let view = fx.view();
        let (c0, ..) = fx.workers();
        let mut s = RelaxedSeqScheduler::new(
            1,
            RelaxedConfig {
                queues_per_worker: 1,
                track_rank: true,
                ..RelaxedConfig::default()
            },
        );
        for &t in &tasks {
            s.push(t, None, &view);
        }
        while s.pop(c0, &view).is_some() {}
        let stats = s.rank_stats().unwrap();
        assert_eq!(stats.pops, 16);
        assert_eq!(stats.rank_max, 0, "one queue must be exact");
        assert_eq!(stats.hist, vec![16]);
    }
}
