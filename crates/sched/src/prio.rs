//! Eager-priority scheduler (StarPU's `prio` policy): a single central
//! queue ordered by the application's *user* priorities, served
//! first-come-first-served within a priority level. Like `eager`/fifo it
//! is model-free and arch-blind — the simplest scheduler that still
//! respects expert priorities, useful as a middle baseline between
//! [`crate::FifoScheduler`] and the dm family.

use std::collections::VecDeque;

use mp_dag::ids::TaskId;
use mp_platform::types::WorkerId;

use crate::api::{SchedView, Scheduler};

/// Central priority buckets (sorted descending), FIFO within a bucket.
#[derive(Debug, Default)]
pub struct EagerPrioScheduler {
    /// (priority, queue) pairs kept sorted by descending priority.
    buckets: Vec<(i64, VecDeque<TaskId>)>,
    pending: usize,
}

impl EagerPrioScheduler {
    /// New empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for EagerPrioScheduler {
    fn name(&self) -> &'static str {
        "prio"
    }

    fn push(&mut self, t: TaskId, _releaser: Option<WorkerId>, view: &SchedView<'_>) {
        let prio = view.graph().task(t).user_priority;
        match self.buckets.binary_search_by(|&(p, _)| prio.cmp(&p)) {
            Ok(i) => self.buckets[i].1.push_back(t),
            Err(i) => self.buckets.insert(i, (prio, VecDeque::from([t]))),
        }
        self.pending += 1;
    }

    fn pop(&mut self, w: WorkerId, view: &SchedView<'_>) -> Option<TaskId> {
        for (_, q) in self.buckets.iter_mut() {
            if let Some(pos) = q.iter().position(|&t| view.worker_can_exec(t, w)) {
                self.pending -= 1;
                return q.remove(pos);
            }
        }
        None
    }

    fn pending(&self) -> usize {
        self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Fixture;

    #[test]
    fn serves_priorities_descending_fifo_within() {
        let mut fx = Fixture::two_arch();
        let lo = fx.add_task(fx.cpu_only, 64, "lo");
        let hi_a = fx.add_task(fx.cpu_only, 64, "hi_a");
        let hi_b = fx.add_task(fx.cpu_only, 64, "hi_b");
        fx.graph.set_user_priority(hi_a, 5);
        fx.graph.set_user_priority(hi_b, 5);
        let view = fx.view();
        let (c0, ..) = fx.workers();
        let mut s = EagerPrioScheduler::new();
        s.push(lo, None, &view);
        s.push(hi_a, None, &view);
        s.push(hi_b, None, &view);
        assert_eq!(
            s.pop(c0, &view),
            Some(hi_a),
            "highest priority, oldest first"
        );
        assert_eq!(s.pop(c0, &view), Some(hi_b));
        assert_eq!(s.pop(c0, &view), Some(lo));
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn skips_inexecutable_high_priority_work() {
        let mut fx = Fixture::two_arch();
        let t_gpu = fx.add_task(fx.gpu_only, 64, "g");
        let t_cpu = fx.add_task(fx.cpu_only, 64, "c");
        fx.graph.set_user_priority(t_gpu, 100);
        let view = fx.view();
        let (c0, _, g0) = fx.workers();
        let mut s = EagerPrioScheduler::new();
        s.push(t_gpu, None, &view);
        s.push(t_cpu, None, &view);
        assert_eq!(s.pop(c0, &view), Some(t_cpu), "cpu skips gpu-only work");
        assert_eq!(s.pop(g0, &view), Some(t_gpu));
    }

    #[test]
    fn negative_priorities_sort_last() {
        let mut fx = Fixture::two_arch();
        let neg = fx.add_task(fx.cpu_only, 64, "neg");
        let zero = fx.add_task(fx.cpu_only, 64, "zero");
        fx.graph.set_user_priority(neg, -3);
        let view = fx.view();
        let (c0, ..) = fx.workers();
        let mut s = EagerPrioScheduler::new();
        s.push(neg, None, &view);
        s.push(zero, None, &view);
        assert_eq!(s.pop(c0, &view), Some(zero));
        assert_eq!(s.pop(c0, &view), Some(neg));
    }
}
