//! The StarPU *deque model* (dm) scheduler family (paper Sec. II):
//!
//! * **dm** (`heft-tm-pr`) — at PUSH, map the task to the worker with the
//!   earliest expected finish time based on the performance model;
//! * **dmda** (`heft-tmdp-pr`) — additionally estimate the time to
//!   transfer the task's data to the candidate's memory node, and request
//!   a prefetch once mapped;
//! * **dmdas** — additionally keep each worker's queue sorted by the
//!   *user-provided* task priorities; among equal-priority tasks, prefer
//!   those whose data is already on the device (the paper's description
//!   of Dmdas's data-locality sensitivity).
//!
//! Dmdas is the paper's main comparator. When an application sets no
//! priorities (FMM, sparse QR in the paper), every task has priority 0 and
//! dmdas degrades to ready-order insertion, exactly as the paper states.

use std::collections::{BinaryHeap, VecDeque};

use mp_dag::ids::TaskId;
use mp_platform::types::WorkerId;

use crate::api::{PrefetchReq, SchedView, Scheduler};
use crate::util::{best_worker_by, expected_finish};

/// Which member of the family to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmVariant {
    /// Model-only EFT mapping.
    Dm,
    /// EFT + transfer estimates + prefetch.
    Dmda,
    /// Dmda + user-priority-sorted queues with local-data preference.
    Dmdas,
}

impl DmVariant {
    fn data_aware(self) -> bool {
        !matches!(self, DmVariant::Dm)
    }

    fn sorted(self) -> bool {
        matches!(self, DmVariant::Dmdas)
    }
}

/// One queued entry: task, its user priority, and a submission sequence
/// number for stable FIFO order among equal priorities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Entry {
    t: TaskId,
    prio: i64,
    seq: u64,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap order: highest user priority first, FIFO (lowest
        // sequence number) among equals. `seq` is unique, so this is a
        // total order and heap layout never influences pop order.
        self.prio.cmp(&other.prio).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One worker's queue: a FIFO for dm/dmda, a priority heap for dmdas
/// (O(log n) push instead of the former O(n) sorted insert).
#[derive(Debug, Default)]
struct WorkerQueue {
    fifo: VecDeque<Entry>,
    heap: BinaryHeap<Entry>,
}

impl WorkerQueue {
    /// Queue length (exercised by the in-module tests).
    #[cfg_attr(not(test), allow(dead_code))]
    fn len(&self) -> usize {
        self.fifo.len() + self.heap.len()
    }

    fn is_empty(&self) -> bool {
        self.fifo.is_empty() && self.heap.is_empty()
    }
}

/// The dm/dmda/dmdas scheduler.
#[derive(Debug)]
pub struct DequeModelScheduler {
    variant: DmVariant,
    /// Per-worker queues (heap-ordered for dmdas, FIFO otherwise).
    queues: Vec<WorkerQueue>,
    /// Work (µs) mapped to each worker but not yet popped.
    committed: Vec<f64>,
    /// Quarantined workers (worker failure): excluded from EFT mapping.
    disabled: Vec<bool>,
    prefetches: Vec<PrefetchReq>,
    /// Scratch for the dmdas locality band (≤ `LOCALITY_BAND` entries).
    band: Vec<Entry>,
    seq: u64,
    pending: usize,
}

impl DequeModelScheduler {
    /// Create a scheduler of the given variant.
    pub fn new(variant: DmVariant) -> Self {
        Self {
            variant,
            queues: Vec::new(),
            committed: Vec::new(),
            disabled: Vec::new(),
            prefetches: Vec::new(),
            band: Vec::new(),
            seq: 0,
            pending: 0,
        }
    }

    fn ensure(&mut self, n: usize) {
        if self.queues.len() < n {
            self.queues.resize_with(n, WorkerQueue::default);
            self.committed.resize(n, 0.0);
            self.disabled.resize(n, false);
        }
    }
}

impl Scheduler for DequeModelScheduler {
    fn name(&self) -> &'static str {
        match self.variant {
            DmVariant::Dm => "dm",
            DmVariant::Dmda => "dmda",
            DmVariant::Dmdas => "dmdas",
        }
    }

    fn push(&mut self, t: TaskId, _releaser: Option<WorkerId>, view: &SchedView<'_>) {
        self.ensure(view.platform().worker_count());
        let data_aware = self.variant.data_aware();
        let committed = &self.committed;
        let disabled = &self.disabled;
        let (w, _) = best_worker_by(view, |w| {
            if disabled[w.index()] {
                return None;
            }
            expected_finish(view, t, w, committed[w.index()], data_aware)
        })
        .expect("task has no executable worker — generator/platform mismatch");
        let delta = view.delta_on_worker(t, w).expect("best worker can execute");
        self.committed[w.index()] += delta;
        let prio = view.graph().task(t).user_priority;
        let entry = Entry {
            t,
            prio,
            seq: self.seq,
        };
        self.seq += 1;
        let q = &mut self.queues[w.index()];
        if self.variant.sorted() {
            q.heap.push(entry);
        } else {
            q.fifo.push_back(entry);
        }
        self.pending += 1;
        if data_aware {
            // Mapping decided: ask the engine to stage the reads early.
            let node = view.platform().worker(w).mem_node;
            for d in view.graph().task(t).reads() {
                if !view.loc.is_on(d, node) {
                    self.prefetches.push(PrefetchReq { data: d, node });
                }
            }
        }
    }

    fn pop(&mut self, w: WorkerId, view: &SchedView<'_>) -> Option<TaskId> {
        self.ensure(view.platform().worker_count());
        if self.queues[w.index()].is_empty() {
            return None;
        }
        let entry = if self.variant.sorted() {
            // Among the highest-priority band, prefer the task with the
            // most bytes already on this worker's node. The band is
            // clipped to the queue head: StarPU's dmdas keeps equal
            // priorities in insertion order and only the front region
            // competes on data availability (an unbounded scan would turn
            // dmdas into a global locality-greedy scheduler it is not).
            const LOCALITY_BAND: usize = 8;
            let node = view.platform().worker(w).mem_node;
            let mut band = std::mem::take(&mut self.band);
            band.clear();
            let q = &mut self.queues[w.index()];
            let top = q.heap.peek().expect("queue checked non-empty").prio;
            // Heap pops arrive in (prio desc, seq asc) order — exactly the
            // former sorted-queue head order, so the band contents and the
            // locality tie-break (`max_by_key` keeps the *last* maximum)
            // are unchanged.
            while band.len() < LOCALITY_BAND {
                match q.heap.peek() {
                    Some(e) if e.prio == top => band.push(q.heap.pop().expect("peeked")),
                    _ => break,
                }
            }
            let idx = (0..band.len())
                .max_by_key(|&i| view.local_bytes(band[i].t, node))
                .expect("band is non-empty");
            let entry = band[idx];
            for (i, &e) in band.iter().enumerate() {
                if i != idx {
                    q.heap.push(e);
                }
            }
            self.band = band;
            entry
        } else {
            self.queues[w.index()]
                .fifo
                .pop_front()
                .expect("queue checked non-empty")
        };
        let delta = view
            .delta_on_worker(entry.t, w)
            .expect("mapped to executable worker");
        self.committed[w.index()] -= delta;
        self.pending -= 1;
        Some(entry.t)
    }

    fn pending(&self) -> usize {
        self.pending
    }

    fn worker_disabled(&mut self, w: WorkerId, view: &SchedView<'_>) {
        self.ensure(view.platform().worker_count());
        self.disabled[w.index()] = true;
        // The dead worker's queue is private: drain it and remap every
        // entry through the ordinary EFT push, which now skips `w`.
        let q = &mut self.queues[w.index()];
        let mut stranded: Vec<Entry> = q.fifo.drain(..).collect();
        stranded.extend(q.heap.drain());
        self.committed[w.index()] = 0.0;
        self.pending -= stranded.len();
        // Preserve the original mapping order (dm/dmda queue order and
        // the dmdas seq tie-break both descend from it).
        stranded.sort_unstable_by_key(|e| e.seq);
        for e in stranded {
            let capable = (0..view.platform().worker_count()).any(|xi| {
                !self.disabled[xi]
                    && view
                        .delta_on_worker(e.t, WorkerId::from_index(xi))
                        .is_some()
            });
            if capable {
                self.push(e.t, None, view);
            } else {
                // No surviving implementation anywhere: leave the entry
                // parked on the dead queue. The engine's capability sweep
                // runs right after this hook and surfaces the typed
                // `NoCapableWorker` error naming the task.
                let q = &mut self.queues[w.index()];
                if self.variant.sorted() {
                    q.heap.push(e);
                } else {
                    q.fifo.push_back(e);
                }
                self.pending += 1;
            }
        }
    }

    fn drain_prefetches(&mut self) -> Vec<PrefetchReq> {
        std::mem::take(&mut self.prefetches)
    }

    fn drain_prefetches_into(&mut self, out: &mut Vec<PrefetchReq>) {
        out.append(&mut self.prefetches);
    }

    fn emits_prefetches(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Fixture;
    use mp_dag::AccessMode;
    use mp_platform::types::MemNodeId;

    #[test]
    fn dm_maps_to_fastest_then_balances() {
        let mut fx = Fixture::two_arch();
        let tasks: Vec<_> = (0..12)
            .map(|i| fx.add_task(fx.both, 64, &format!("t{i}")))
            .collect();
        let view = fx.view();
        let mut s = DequeModelScheduler::new(DmVariant::Dm);
        for &t in &tasks {
            s.push(t, None, &view);
        }
        // GPU is 10× faster: most work lands there, but once its committed
        // queue exceeds 100 µs the CPUs start receiving tasks.
        let gpu_q = s.queues[2].len();
        let cpu_q = s.queues[0].len() + s.queues[1].len();
        assert!(gpu_q >= 8, "gpu should absorb the bulk (got {gpu_q})");
        assert!(cpu_q >= 1, "cpus should receive overflow (got {cpu_q})");
        assert_eq!(gpu_q + cpu_q, 12);
    }

    #[test]
    fn dmda_avoids_expensive_transfers() {
        let mut fx = Fixture::two_arch();
        let d = fx.graph.add_data(1 << 30, "huge");
        let t = fx
            .graph
            .add_task(fx.both, vec![(d, AccessMode::Read)], 1.0, "t");
        let view = fx.view();
        let mut dm = DequeModelScheduler::new(DmVariant::Dm);
        let mut dmda = DequeModelScheduler::new(DmVariant::Dmda);
        dm.push(t, None, &view);
        dmda.push(t, None, &view);
        assert_eq!(dm.queues[2].len(), 1, "dm ignores the 1 GiB fetch");
        assert_eq!(dmda.queues[0].len(), 1, "dmda keeps the task near its data");
    }

    #[test]
    fn dmda_emits_prefetch_for_mapped_reads() {
        let mut fx = Fixture::two_arch();
        let d = fx.graph.add_data(1024, "small");
        let t = fx
            .graph
            .add_task(fx.both, vec![(d, AccessMode::Read)], 1.0, "t");
        let view = fx.view();
        let mut s = DequeModelScheduler::new(DmVariant::Dmda);
        s.push(t, None, &view);
        let reqs = s.drain_prefetches();
        assert_eq!(
            reqs,
            vec![PrefetchReq {
                data: d,
                node: MemNodeId(1)
            }]
        );
        assert!(s.drain_prefetches().is_empty(), "drain clears the buffer");
    }

    #[test]
    fn dmdas_orders_by_user_priority() {
        let mut fx = Fixture::two_arch();
        let lo = fx.add_task(fx.cpu_only, 64, "lo");
        let filler = fx.add_task(fx.cpu_only, 64, "filler");
        let hi = fx.add_task(fx.cpu_only, 64, "hi");
        fx.graph.set_user_priority(hi, 10);
        let view = fx.view();
        let (c0, ..) = fx.workers();
        let mut s = DequeModelScheduler::new(DmVariant::Dmdas);
        // EFT mapping: lo -> c0, filler -> c1, hi -> c0 (tie on committed
        // work breaks to the lowest id). c0's queue holds [hi, lo].
        s.push(lo, None, &view);
        s.push(filler, None, &view);
        s.push(hi, None, &view);
        assert_eq!(s.pop(c0, &view), Some(hi), "higher priority first");
        assert_eq!(s.pop(c0, &view), Some(lo));
    }

    #[test]
    fn dmdas_prefers_local_data_among_equal_priorities() {
        let mut fx = Fixture::two_arch();
        let d_remote = fx.graph.add_data(4096, "remote");
        let d_local = fx.graph.add_data(4096, "local");
        let t_remote =
            fx.graph
                .add_task(fx.gpu_only, vec![(d_remote, AccessMode::Read)], 1.0, "tr");
        let t_local = fx
            .graph
            .add_task(fx.gpu_only, vec![(d_local, AccessMode::Read)], 1.0, "tl");
        fx.locator.place(d_local, MemNodeId(1));
        let view = fx.view();
        let (_, _, g0) = fx.workers();
        let mut s = DequeModelScheduler::new(DmVariant::Dmdas);
        s.push(t_remote, None, &view);
        s.push(t_local, None, &view);
        assert_eq!(s.pop(g0, &view), Some(t_local), "local data wins the tie");
        assert_eq!(s.pop(g0, &view), Some(t_remote));
    }

    #[test]
    fn fifo_among_equal_priorities_without_data() {
        let mut fx = Fixture::two_arch();
        let a = fx.add_task(fx.cpu_only, 64, "a");
        let b = fx.add_task(fx.cpu_only, 64, "b");
        let view = fx.view();
        let (c0, c1, _) = fx.workers();
        let mut s = DequeModelScheduler::new(DmVariant::Dmdas);
        // EFT maps a -> c0 and b -> c1 (load balancing on free workers).
        s.push(a, None, &view);
        s.push(b, None, &view);
        assert_eq!(s.pop(c0, &view), Some(a));
        assert_eq!(s.pop(c1, &view), Some(b));
        assert_eq!(s.pending(), 0);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::testutil::Fixture;

    /// Committed-work bookkeeping balances to zero over a push/pop cycle
    /// and actually steers later mappings away from loaded workers.
    #[test]
    fn committed_work_balances_and_steers() {
        let mut fx = Fixture::two_arch();
        let tasks: Vec<_> = (0..6)
            .map(|i| fx.add_task(fx.cpu_only, 64, &format!("t{i}")))
            .collect();
        let view = fx.view();
        let (c0, c1, _) = fx.workers();
        let mut s = DequeModelScheduler::new(DmVariant::Dm);
        for &t in &tasks {
            s.push(t, None, &view);
        }
        // Round-robin-ish across the two equal CPUs via committed work.
        assert_eq!(s.queues[c0.index()].len(), 3);
        assert_eq!(s.queues[c1.index()].len(), 3);
        for _ in 0..3 {
            assert!(s.pop(c0, &view).is_some());
            assert!(s.pop(c1, &view).is_some());
        }
        assert!(
            s.committed[c0.index()].abs() < 1e-9,
            "committed drains to zero"
        );
        assert!(s.committed[c1.index()].abs() < 1e-9);
        assert_eq!(s.pending(), 0);
    }

    /// Variant names round-trip through the trait.
    #[test]
    fn variant_names() {
        use crate::api::Scheduler as _;
        assert_eq!(DequeModelScheduler::new(DmVariant::Dm).name(), "dm");
        assert_eq!(DequeModelScheduler::new(DmVariant::Dmda).name(), "dmda");
        assert_eq!(DequeModelScheduler::new(DmVariant::Dmdas).name(), "dmdas");
    }

    /// dm never emits prefetches; dmda/dmdas do.
    #[test]
    fn prefetch_emission_per_variant() {
        for (variant, expects) in [
            (DmVariant::Dm, false),
            (DmVariant::Dmda, true),
            (DmVariant::Dmdas, true),
        ] {
            let mut fx = Fixture::two_arch();
            let t = fx.add_task(fx.both, 4096, "t");
            let view = fx.view();
            let mut s = DequeModelScheduler::new(variant);
            s.push(t, None, &view);
            assert_eq!(!s.drain_prefetches().is_empty(), expects, "{variant:?}");
        }
    }

    /// Pop from an empty queue returns None without disturbing others.
    #[test]
    fn empty_queue_pop_is_none() {
        let mut fx = Fixture::two_arch();
        let t = fx.add_task(fx.gpu_only, 64, "t");
        let view = fx.view();
        let (c0, _, g0) = fx.workers();
        let mut s = DequeModelScheduler::new(DmVariant::Dmdas);
        s.push(t, None, &view); // maps to the GPU
        assert_eq!(s.pop(c0, &view), None, "CPU queue stays empty");
        assert_eq!(s.pop(g0, &view), Some(t));
    }
}
