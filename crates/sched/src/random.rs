//! Random scheduler — a seeded chaos baseline for tests and sanity
//! comparisons (any heuristic should beat it).

use mp_dag::ids::TaskId;
use mp_platform::types::WorkerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::api::{SchedView, Scheduler};

/// Hands an idle worker a uniformly random executable ready task.
#[derive(Debug)]
pub struct RandomScheduler {
    ready: Vec<TaskId>,
    rng: StdRng,
    /// Pop-path scratch: indices of executable ready tasks.
    eligible: Vec<usize>,
}

impl RandomScheduler {
    /// Deterministic given the seed.
    pub fn new(seed: u64) -> Self {
        Self {
            ready: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            eligible: Vec::new(),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &'static str {
        "random"
    }

    fn push(&mut self, t: TaskId, _releaser: Option<WorkerId>, _view: &SchedView<'_>) {
        self.ready.push(t);
    }

    fn pop(&mut self, w: WorkerId, view: &SchedView<'_>) -> Option<TaskId> {
        self.eligible.clear();
        let ready = &self.ready;
        self.eligible
            .extend((0..ready.len()).filter(|&i| view.worker_can_exec(ready[i], w)));
        if self.eligible.is_empty() {
            return None;
        }
        let pick = self.eligible[self.rng.gen_range(0..self.eligible.len())];
        Some(self.ready.swap_remove(pick))
    }

    fn pending(&self) -> usize {
        self.ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Fixture;

    #[test]
    fn deterministic_under_seed() {
        let mut fx = Fixture::two_arch();
        let tasks: Vec<_> = (0..20)
            .map(|i| fx.add_task(fx.both, 64, &format!("t{i}")))
            .collect();
        let view = fx.view();
        let (c0, ..) = fx.workers();
        let run = |seed: u64| -> Vec<TaskId> {
            let mut s = RandomScheduler::new(seed);
            for &t in &tasks {
                s.push(t, None, &view);
            }
            (0..20).map(|_| s.pop(c0, &view).unwrap()).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(
            run(7),
            run(8),
            "different seeds should (overwhelmingly) differ"
        );
    }

    #[test]
    fn never_returns_inexecutable() {
        let mut fx = Fixture::two_arch();
        let t_gpu = fx.add_task(fx.gpu_only, 64, "g");
        let view = fx.view();
        let (c0, _, g0) = fx.workers();
        let mut s = RandomScheduler::new(1);
        s.push(t_gpu, None, &view);
        assert_eq!(s.pop(c0, &view), None);
        assert_eq!(s.pop(g0, &view), Some(t_gpu));
    }
}
