//! # mp-sched — scheduler interface and baseline schedulers
//!
//! The execution engines (the `mp-sim` discrete-event simulator and the
//! `mp-runtime` threaded runtime) drive schedulers through the
//! [`Scheduler`] trait, which mirrors StarPU's two intervention points
//! (paper Sec. IV-A):
//!
//! * **PUSH** — a task became ready (all predecessors finished);
//! * **POP** — a worker is idle and requests a task.
//!
//! This crate also implements every baseline the paper compares against
//! or cites:
//!
//! | name | family | paper reference |
//! |------|--------|-----------------|
//! | [`FifoScheduler`] | central queue | (sanity baseline) |
//! | [`EagerPrioScheduler`] | central queue | StarPU's `prio` policy |
//! | [`RandomScheduler`] | central queue | (sanity baseline) |
//! | [`LwsScheduler`] | resource-centric | locality work stealing (Sec. II) |
//! | [`DequeModelScheduler`] `dm` | task-centric | heft-tm-pr (Sec. II) |
//! | [`DequeModelScheduler`] `dmda` | task-centric | heft-tmdp-pr (Sec. II) |
//! | [`DequeModelScheduler`] `dmdas` | task-centric | the paper's main comparator |
//! | [`HeteroPrioScheduler`] | affinity-based | Agullo et al. [3], auto priorities per Flint et al. [9] |
//!
//! MultiPrio itself lives in the `multiprio` crate (the paper's
//! contribution) and implements the same trait.

pub mod api;
pub mod concurrent;
pub mod dm;
pub mod fifo;
pub mod heteroprio;
pub mod lws;
pub mod prio;
pub mod random;
pub mod relaxed;
pub mod testutil;
pub mod util;

pub use api::{
    DataLocator, InfeasibleAssignment, LoadInfo, PrefetchReq, SchedEvent, SchedView, Scheduler,
};
pub use concurrent::{ConcurrentScheduler, GlobalLock, ShardedAdapter};
pub use dm::{DequeModelScheduler, DmVariant};
pub use fifo::FifoScheduler;
pub use heteroprio::HeteroPrioScheduler;
pub use lws::LwsScheduler;
pub use prio::EagerPrioScheduler;
pub use random::RandomScheduler;
pub use relaxed::{RankTracker, RelaxedConfig, RelaxedMultiQueue, RelaxedSeqScheduler};
