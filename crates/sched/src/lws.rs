//! Locality work stealing (StarPU's `lws` policy, paper Sec. II).
//!
//! Resource-centric: each worker owns a deque. A ready task lands on the
//! deque of the worker that released it (locality); idle workers pop their
//! own deque LIFO and steal FIFO from victims, preferring victims on the
//! same memory node. As the paper notes, `lws` treats CPUs and GPUs as
//! identical resources — it is included for completeness and ablations,
//! not as a paper comparator.

use std::collections::VecDeque;

use mp_dag::ids::TaskId;
use mp_platform::types::WorkerId;

use crate::api::{SchedView, Scheduler};

/// Per-worker deques with locality-ordered stealing.
#[derive(Debug, Default)]
pub struct LwsScheduler {
    deques: Vec<VecDeque<TaskId>>,
    /// Round-robin cursor for initially-ready tasks (no releaser).
    rr: usize,
    pending: usize,
    /// Cached victim order per thief (same-node victims first, then by
    /// id) — the platform is fixed for a run, so this never changes.
    victim_order: Vec<Vec<WorkerId>>,
}

impl LwsScheduler {
    /// New empty scheduler (deques are sized lazily from the view).
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        if self.deques.len() < n {
            self.deques.resize_with(n, VecDeque::new);
        }
    }

    fn take_first_executable(
        deque: &mut VecDeque<TaskId>,
        w: WorkerId,
        view: &SchedView<'_>,
        lifo: bool,
    ) -> Option<TaskId> {
        if lifo {
            let pos = deque.iter().rposition(|&t| view.worker_can_exec(t, w))?;
            deque.remove(pos)
        } else {
            let pos = deque.iter().position(|&t| view.worker_can_exec(t, w))?;
            deque.remove(pos)
        }
    }
}

impl Scheduler for LwsScheduler {
    fn name(&self) -> &'static str {
        "lws"
    }

    fn push(&mut self, t: TaskId, releaser: Option<WorkerId>, view: &SchedView<'_>) {
        self.ensure(view.platform().worker_count());
        let owner = match releaser {
            Some(w) => w.index(),
            None => {
                let i = self.rr % self.deques.len();
                self.rr += 1;
                i
            }
        };
        self.deques[owner].push_back(t);
        self.pending += 1;
    }

    fn pop(&mut self, w: WorkerId, view: &SchedView<'_>) -> Option<TaskId> {
        self.ensure(view.platform().worker_count());
        // Own deque first, newest-first (cache warmth).
        if let Some(t) = Self::take_first_executable(&mut self.deques[w.index()], w, view, true) {
            self.pending -= 1;
            return Some(t);
        }
        // Steal oldest-first, same-node victims before remote ones. The
        // victim order depends only on the (fixed) platform: build it once
        // per thief and replay it on every later steal attempt.
        if self.victim_order.len() < view.platform().worker_count() {
            self.victim_order
                .resize_with(view.platform().worker_count(), Vec::new);
        }
        if self.victim_order[w.index()].is_empty() {
            let my_node = view.platform().worker(w).mem_node;
            let victims = &mut self.victim_order[w.index()];
            victims.extend(
                view.platform()
                    .workers()
                    .iter()
                    .map(|x| x.id)
                    .filter(|&v| v != w),
            );
            victims.sort_unstable_by_key(|&v| {
                let same = view.platform().worker(v).mem_node == my_node;
                (if same { 0u8 } else { 1u8 }, v)
            });
        }
        for k in 0..self.victim_order[w.index()].len() {
            let v = self.victim_order[w.index()][k];
            if let Some(t) =
                Self::take_first_executable(&mut self.deques[v.index()], w, view, false)
            {
                self.pending -= 1;
                return Some(t);
            }
        }
        None
    }

    fn pending(&self) -> usize {
        self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Fixture;

    #[test]
    fn own_deque_is_lifo() {
        let mut fx = Fixture::two_arch();
        let t0 = fx.add_task(fx.both, 64, "t0");
        let t1 = fx.add_task(fx.both, 64, "t1");
        let view = fx.view();
        let (c0, ..) = fx.workers();
        let mut s = LwsScheduler::new();
        s.push(t0, Some(c0), &view);
        s.push(t1, Some(c0), &view);
        assert_eq!(s.pop(c0, &view), Some(t1), "newest first on own deque");
        assert_eq!(s.pop(c0, &view), Some(t0));
    }

    #[test]
    fn stealing_is_fifo_and_prefers_same_node() {
        let mut fx = Fixture::two_arch();
        let t0 = fx.add_task(fx.both, 64, "t0");
        let t1 = fx.add_task(fx.both, 64, "t1");
        let t2 = fx.add_task(fx.both, 64, "t2");
        let view = fx.view();
        let (c0, c1, g0) = fx.workers();
        let mut s = LwsScheduler::new();
        // c1 (same node as c0) holds [t0, t1]; g0 holds [t2].
        s.push(t0, Some(c1), &view);
        s.push(t1, Some(c1), &view);
        s.push(t2, Some(g0), &view);
        assert_eq!(
            s.pop(c0, &view),
            Some(t0),
            "steal oldest from same-node victim"
        );
        assert_eq!(s.pop(c0, &view), Some(t1));
        assert_eq!(
            s.pop(c0, &view),
            Some(t2),
            "then fall back to remote victim"
        );
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn thief_skips_tasks_it_cannot_run() {
        let mut fx = Fixture::two_arch();
        let tg = fx.add_task(fx.gpu_only, 64, "g");
        let tc = fx.add_task(fx.cpu_only, 64, "c");
        let view = fx.view();
        let (c0, c1, g0) = fx.workers();
        let mut s = LwsScheduler::new();
        s.push(tg, Some(c1), &view);
        s.push(tc, Some(c1), &view);
        assert_eq!(s.pop(c0, &view), Some(tc), "cpu thief skips gpu-only work");
        assert_eq!(s.pop(g0, &view), Some(tg));
    }

    #[test]
    fn initial_tasks_round_robin() {
        let mut fx = Fixture::two_arch();
        let tasks: Vec<_> = (0..6)
            .map(|i| fx.add_task(fx.cpu_only, 64, &format!("t{i}")))
            .collect();
        let view = fx.view();
        let mut s = LwsScheduler::new();
        for &t in &tasks {
            s.push(t, None, &view);
        }
        // 3 workers, 6 tasks: each deque gets 2.
        assert_eq!(
            s.deques.iter().map(|d| d.len()).collect::<Vec<_>>(),
            vec![2, 2, 2]
        );
    }
}
