//! Shared helpers for scheduler implementations.

use mp_dag::ids::TaskId;
use mp_platform::types::WorkerId;

use crate::api::SchedView;

/// Earliest-finish-time estimate of running `t` on `w`, given extra
/// `committed_us` of work already queued on that worker inside the
/// scheduler: `max(now, busy_until(w)) + committed + fetch? + δ`.
///
/// `with_transfers` adds the estimated fetch time of missing read data to
/// the worker's memory node (the Dmda refinement).
pub fn expected_finish(
    view: &SchedView<'_>,
    t: TaskId,
    w: WorkerId,
    committed_us: f64,
    with_transfers: bool,
) -> Option<f64> {
    let delta = view.delta_on_worker(t, w)?;
    let free_at = view.load.busy_until(w).max(view.now) + committed_us;
    let fetch = if with_transfers {
        view.fetch_time(t, view.platform().worker(w).mem_node)
    } else {
        0.0
    };
    // Transfers overlap with the worker draining its queue only partially;
    // StarPU's dm family adds them serially, which we follow.
    Some(free_at + fetch + delta)
}

/// Deterministic argmin over workers: earliest finish, ties by worker id.
pub fn best_worker_by<F: FnMut(WorkerId) -> Option<f64>>(
    view: &SchedView<'_>,
    mut cost: F,
) -> Option<(WorkerId, f64)> {
    let mut best: Option<(WorkerId, f64)> = None;
    for worker in view.platform().workers() {
        if let Some(c) = cost(worker.id) {
            let better = match best {
                None => true,
                Some((bw, bc)) => c < bc || (c == bc && worker.id < bw),
            };
            if better {
                best = Some((worker.id, c));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Fixture;
    use mp_platform::types::MemNodeId;

    #[test]
    fn eft_prefers_gpu_for_accelerated_kernel() {
        let mut fx = Fixture::two_arch();
        let t = fx.add_task(fx.both, 1024, "t");
        let view = fx.view();
        let (w, c) = best_worker_by(&view, |w| expected_finish(&view, t, w, 0.0, false)).unwrap();
        assert_eq!(w, WorkerId(2));
        assert_eq!(c, 10.0);
    }

    #[test]
    fn eft_accounts_for_load() {
        let mut fx = Fixture::two_arch();
        let t = fx.add_task(fx.both, 1024, "t");
        // GPU busy for 1000 µs: CPU (100 µs) wins.
        fx.load.0.insert(WorkerId(2), 1000.0);
        let view = fx.view();
        let (w, _) = best_worker_by(&view, |w| expected_finish(&view, t, w, 0.0, false)).unwrap();
        assert_eq!(w, WorkerId(0));
    }

    #[test]
    fn transfers_can_flip_the_choice() {
        let mut fx = Fixture::two_arch();
        // 1 GiB of read data in RAM: moving it to the GPU costs ~89 ms,
        // far more than the 90 µs the GPU saves.
        let d = fx.graph.add_data(1 << 30, "huge");
        let t = fx
            .graph
            .add_task(fx.both, vec![(d, mp_dag::AccessMode::Read)], 1.0, "t");
        let view = fx.view();
        let (w_no, _) =
            best_worker_by(&view, |w| expected_finish(&view, t, w, 0.0, false)).unwrap();
        let (w_da, _) = best_worker_by(&view, |w| expected_finish(&view, t, w, 0.0, true)).unwrap();
        assert_eq!(w_no, WorkerId(2), "transfer-blind EFT picks the GPU");
        assert_eq!(w_da, WorkerId(0), "data-aware EFT keeps it on a CPU");
        let _ = MemNodeId(0);
    }

    #[test]
    fn ties_break_on_worker_id() {
        let mut fx = Fixture::two_arch();
        let t = fx.add_task(fx.cpu_only, 64, "t");
        let view = fx.view();
        let (w, _) = best_worker_by(&view, |w| expected_finish(&view, t, w, 0.0, false)).unwrap();
        assert_eq!(w, WorkerId(0), "both CPUs cost 50 µs; lowest id wins");
    }
}
