//! Concurrent scheduler front-ends for the threaded runtime.
//!
//! The [`Scheduler`] trait is sequential by design (`&mut self` at PUSH /
//! POP), which forces a threaded engine to serialize every scheduling
//! decision through one lock. This module defines the engine-facing
//! [`ConcurrentScheduler`] interface (`&self` everywhere) plus two
//! adapters:
//!
//! * [`GlobalLock`] — the baseline: one mutex around a single policy
//!   instance. Semantically identical to driving the policy directly;
//!   kept for determinism-sensitive tests and as the contention baseline
//!   for the `micro_runtime_scaling` benchmark.
//! * [`ShardedAdapter`] — a relaxed multi-queue in the spirit of
//!   Postnikova et al. (*Multi-Queues Can Be State-of-the-Art Priority
//!   Schedulers*) and Wimmer et al. (*Data Structures for Task-based
//!   Priority Scheduling*): the policy is **partitioned** into per-shard
//!   instances, each behind its own small mutex. Pushes route to the
//!   releasing worker's shard (locality) or round-robin; pops try the
//!   worker's own shard first, then steal — two random victims probed in
//!   load order (randomized two-choice), then a full sweep so the last
//!   tasks of a drain cannot be missed. Stateful policies keep their
//!   semantics through two mechanisms:
//!   * a **sequenced event channel**: every engine feedback event is
//!     appended to a global log with a total order, and each shard
//!     replays the log (from its own cursor) before any push/pop — so
//!     every shard observes the same ordered event stream a single
//!     instance would;
//!   * **shared score state**: policies whose scores depend on a running
//!     aggregate can share it across shards (e.g. `multiprio`'s
//!     `SharedGainTracker` in the `multiprio` crate).
//!
//! The price of sharding is *relaxation*: a pop may return a task whose
//! score is not the global maximum (it is the best of the probed shards).
//! The cited work shows this preserves scheduling quality for pop-heavy
//! workloads while removing the scalability collapse of a global lock.
//!
//! **Lock poisoning.** Every mutex in this module recovers from poison
//! (`unwrap_or_else(|p| p.into_inner())`) instead of propagating it.
//! Front-end state is only mutated at push/pop/replay boundaries — no
//! user kernel ever runs under these locks — so a panic unwinding
//! through a holder (e.g. a panicking kernel caught by the engine's
//! worker-loop `catch_unwind`) leaves the protected state consistent.
//! Propagating the poison instead turns one `KernelPanicked` into a
//! cascade that aborts every surviving worker's next pop.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use mp_dag::ids::TaskId;
use mp_platform::types::WorkerId;

use crate::api::{PrefetchReq, SchedEvent, SchedView, Scheduler};
use crate::relaxed::{two_distinct, SPLITMIX_GAMMA};

pub use crate::relaxed::{RelaxedConfig, RelaxedMultiQueue, RelaxedSeqScheduler};

/// A scheduler front-end callable concurrently from every worker thread.
///
/// Engine contract (mirrors [`Scheduler`]):
/// * `push` is called exactly once per task, when it becomes ready;
/// * a task returned by `pop` is executed — there is no cancellation;
/// * `pop` must only return tasks the requesting worker can execute;
/// * `pop` returning `None` does **not** imply emptiness (hold-backs);
///   engines must re-poll while `pending() > 0`.
pub trait ConcurrentScheduler: Send + Sync {
    /// Display name (policy name, plus front-end decoration if any).
    fn name(&self) -> String;

    /// A task became ready (see [`Scheduler::push`]).
    fn push(&self, t: TaskId, releaser: Option<WorkerId>, view: &SchedView<'_>);

    /// Idle worker `w` requests a task (see [`Scheduler::pop`]).
    fn pop(&self, w: WorkerId, view: &SchedView<'_>) -> Option<TaskId>;

    /// Execution feedback, delivered in engine order.
    fn feedback(&self, ev: &SchedEvent, view: &SchedView<'_>);

    /// Worker `w` died or was quarantined (see
    /// [`Scheduler::worker_disabled`]); the engine never calls `pop(w)`
    /// again.
    fn worker_disabled(&self, w: WorkerId, view: &SchedView<'_>);

    /// Re-enqueue `t` after a failed execution attempt or a worker death
    /// (see [`Scheduler::push_retry`]).
    fn push_retry(&self, t: TaskId, attempt: u32, view: &SchedView<'_>);

    /// Pushed-but-not-popped tasks across the whole front-end.
    fn pending(&self) -> usize;

    /// Drain prefetch requests accumulated by the policy instances.
    fn drain_prefetches(&self) -> Vec<PrefetchReq>;

    /// Merged observability counters of the wrapped policy instances,
    /// plus front-end-level accounting (per-shard pops and steals for
    /// [`ShardedAdapter`]). All-zeros unless built with `--features obs`.
    fn counters(&self) -> mp_trace::CounterSnapshot {
        mp_trace::CounterSnapshot::default()
    }
}

/// Baseline front-end: one global mutex around a single policy instance.
pub struct GlobalLock {
    name: String,
    consumes_feedback: bool,
    emits_prefetches: bool,
    inner: Mutex<Box<dyn Scheduler>>,
}

impl GlobalLock {
    /// Wrap a policy.
    pub fn new(scheduler: Box<dyn Scheduler>) -> Self {
        Self {
            name: scheduler.name().to_string(),
            consumes_feedback: scheduler.consumes_feedback(),
            emits_prefetches: scheduler.emits_prefetches(),
            inner: Mutex::new(scheduler),
        }
    }
}

impl ConcurrentScheduler for GlobalLock {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn push(&self, t: TaskId, releaser: Option<WorkerId>, view: &SchedView<'_>) {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(t, releaser, view);
    }

    fn pop(&self, w: WorkerId, view: &SchedView<'_>) -> Option<TaskId> {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop(w, view)
    }

    fn feedback(&self, ev: &SchedEvent, view: &SchedView<'_>) {
        if !self.consumes_feedback {
            return;
        }
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .feedback(ev, view);
    }

    fn worker_disabled(&self, w: WorkerId, view: &SchedView<'_>) {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .worker_disabled(w, view);
    }

    fn push_retry(&self, t: TaskId, attempt: u32, view: &SchedView<'_>) {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push_retry(t, attempt, view);
    }

    fn pending(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pending()
    }

    fn drain_prefetches(&self) -> Vec<PrefetchReq> {
        if !self.emits_prefetches {
            return Vec::new();
        }
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain_prefetches()
    }

    fn counters(&self) -> mp_trace::CounterSnapshot {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .counters()
    }
}

/// One shard: a policy instance plus its replay cursor into the event
/// log. Pad-free: the mutex itself is the contention point and shards
/// are heap-allocated far apart in practice.
struct ShardState {
    policy: Box<dyn Scheduler>,
    /// Events `[0, applied)` of the global log have been replayed here.
    applied: usize,
}

struct Shard {
    state: Mutex<ShardState>,
    /// Pushed-but-not-popped tasks in this shard (steal-victim choice).
    pending: AtomicUsize,
    /// Observability: tasks popped from this shard / popped by a worker
    /// whose home shard is elsewhere. Dormant (never written) unless
    /// built with `--features obs` — the bump sites are behind a
    /// constant-folded `obs_enabled()` check.
    pops: AtomicU64,
    steals: AtomicU64,
}

/// Sharded multi-queue front-end (see module docs).
pub struct ShardedAdapter {
    name: String,
    consumes_feedback: bool,
    emits_prefetches: bool,
    shards: Vec<Shard>,
    /// Total pushed-but-not-popped tasks across shards.
    pending_total: AtomicUsize,
    /// Round-robin cursor for pushes with no releasing worker.
    rr: AtomicUsize,
    /// Sequenced event channel: total-ordered feedback log.
    events: Mutex<Vec<SchedEvent>>,
    /// Steal randomness (splitmix64 state).
    rng: AtomicU64,
    /// Dead workers by index (grown lazily in `worker_disabled`; the
    /// adapter learns the platform's worker count from the view there).
    dead_workers: Mutex<Vec<bool>>,
    /// `orphaned[i]` — every worker whose home shard is `i` has died.
    /// New pushes must not route here: the owner will never pop again,
    /// so under sustained load the shard only drains through the steal
    /// path while its backlog keeps growing. Read on the push hot path,
    /// written only from the cold quarantine path.
    orphaned: Vec<AtomicBool>,
}

impl ShardedAdapter {
    /// Build `shards` policy instances from `factory`. For stateful
    /// policies the factory should wire shared score state across the
    /// instances (e.g. `MultiPrioScheduler::with_shared_gain`).
    pub fn new(shards: usize, factory: &dyn Fn() -> Box<dyn Scheduler>) -> Self {
        let shards = shards.max(1);
        let built: Vec<Shard> = (0..shards)
            .map(|_| Shard {
                state: Mutex::new(ShardState {
                    policy: factory(),
                    applied: 0,
                }),
                pending: AtomicUsize::new(0),
                pops: AtomicU64::new(0),
                steals: AtomicU64::new(0),
            })
            .collect();
        let (name, consumes_feedback, emits_prefetches) = {
            let s = built[0].state.lock().unwrap_or_else(|p| p.into_inner());
            (
                format!("{}+sharded{}", s.policy.name(), shards),
                s.policy.consumes_feedback(),
                s.policy.emits_prefetches(),
            )
        };
        let n = built.len();
        Self {
            name,
            consumes_feedback,
            emits_prefetches,
            shards: built,
            pending_total: AtomicUsize::new(0),
            rr: AtomicUsize::new(0),
            events: Mutex::new(Vec::new()),
            rng: AtomicU64::new(0x5817_55ca_11ab_1e5e),
            dead_workers: Mutex::new(Vec::new()),
            orphaned: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Pushed-but-not-popped tasks currently queued on shard `i`
    /// (observability and routing tests).
    pub fn shard_pending(&self, i: usize) -> usize {
        self.shards[i].pending.load(Ordering::Acquire)
    }

    /// Advance the splitmix64 state by one draw.
    fn draw(&self) -> u64 {
        self.rng
            .fetch_add(SPLITMIX_GAMMA, Ordering::Relaxed)
            .wrapping_add(SPLITMIX_GAMMA)
    }

    fn home_shard(&self, w: WorkerId) -> usize {
        w.index() % self.shards.len()
    }

    /// `preferred`, unless that shard is orphaned — then the next live
    /// shard from the round-robin cursor, so redistributed pushes spread
    /// instead of piling onto one survivor. Falls back to `preferred`
    /// only in the degenerate all-orphaned state (the engine is about
    /// to abort with `NoCapableWorker` anyway).
    fn live_shard(&self, preferred: usize) -> usize {
        if !self.orphaned[preferred].load(Ordering::Relaxed) {
            return preferred;
        }
        let n = self.shards.len();
        let start = self.rr.fetch_add(1, Ordering::Relaxed);
        for off in 0..n {
            let j = (start + off) % n;
            if !self.orphaned[j].load(Ordering::Relaxed) {
                return j;
            }
        }
        preferred
    }

    /// Replay the global event log into this shard's policy, in order.
    /// Caller holds the shard lock; the log lock nests inside it (the
    /// only lock-ordering rule in this type: shard → log).
    fn catch_up(&self, state: &mut ShardState, view: &SchedView<'_>) {
        if !self.consumes_feedback {
            return;
        }
        loop {
            let fresh: Vec<SchedEvent> = {
                let log = self.events.lock().unwrap_or_else(|p| p.into_inner());
                if state.applied >= log.len() {
                    return;
                }
                log[state.applied..].to_vec()
            };
            state.applied += fresh.len();
            for ev in &fresh {
                state.policy.feedback(ev, view);
            }
        }
    }

    /// Pop from shard `i` for worker `w`, maintaining counters.
    fn pop_shard(&self, i: usize, w: WorkerId, view: &SchedView<'_>) -> Option<TaskId> {
        let shard = &self.shards[i];
        // Cheap skip without taking the lock.
        if shard.pending.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut state = shard.state.lock().unwrap_or_else(|p| p.into_inner());
        self.catch_up(&mut state, view);
        let t = state.policy.pop(w, view)?;
        shard.pending.fetch_sub(1, Ordering::AcqRel);
        self.pending_total.fetch_sub(1, Ordering::AcqRel);
        if mp_trace::obs::obs_enabled() {
            shard.pops.fetch_add(1, Ordering::Relaxed);
            if i != self.home_shard(w) {
                shard.steals.fetch_add(1, Ordering::Relaxed);
            }
        }
        Some(t)
    }
}

impl ConcurrentScheduler for ShardedAdapter {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn push(&self, t: TaskId, releaser: Option<WorkerId>, view: &SchedView<'_>) {
        // Locality: a task released by worker w lands on w's shard, so a
        // producer chain stays on one queue; initial tasks spread
        // round-robin. Either route detours around orphaned shards —
        // a releaser is alive by definition, but its shard can share an
        // index with a dead worker's under shards < workers.
        let i = self.live_shard(match releaser {
            Some(w) => self.home_shard(w),
            None => self.rr.fetch_add(1, Ordering::Relaxed) % self.shards.len(),
        });
        let shard = &self.shards[i];
        let mut state = shard.state.lock().unwrap_or_else(|p| p.into_inner());
        self.catch_up(&mut state, view);
        state.policy.push(t, releaser, view);
        shard.pending.fetch_add(1, Ordering::AcqRel);
        self.pending_total.fetch_add(1, Ordering::AcqRel);
    }

    fn pop(&self, w: WorkerId, view: &SchedView<'_>) -> Option<TaskId> {
        let n = self.shards.len();
        let own = self.home_shard(w);
        if let Some(t) = self.pop_shard(own, w, view) {
            return Some(t);
        }
        if n == 1 || self.pending_total.load(Ordering::Acquire) == 0 {
            return None;
        }
        // Randomized two-choice stealing: probe the better-loaded of two
        // *distinct* random victims first. The two indices come from two
        // independent splitmix64 streams over one state draw — the old
        // scheme reused the high/low halves of a single mixed draw,
        // which collides with probability 1/n and degenerates into
        // one-choice probing of a possibly-empty shard at small n.
        let (a, b) = two_distinct(self.draw(), n);
        let (first, second) = if self.shards[a].pending.load(Ordering::Acquire)
            >= self.shards[b].pending.load(Ordering::Acquire)
        {
            (a, b)
        } else {
            (b, a)
        };
        for i in [first, second] {
            if i != own {
                if let Some(t) = self.pop_shard(i, w, view) {
                    return Some(t);
                }
            }
        }
        // Fallback sweep: when little work remains the random probes can
        // miss the only non-empty shard; a full pass guarantees an idle
        // worker finds any task it is allowed to run.
        for i in 0..n {
            if i != own && i != first && i != second {
                if let Some(t) = self.pop_shard(i, w, view) {
                    return Some(t);
                }
            }
        }
        None
    }

    fn feedback(&self, ev: &SchedEvent, _view: &SchedView<'_>) {
        // Feedback-blind policies (the default) skip the channel — and
        // its synchronization — entirely.
        if !self.consumes_feedback {
            return;
        }
        // Append to the sequenced channel; shards replay lazily under
        // their own lock. The log lock serializes only a Vec push.
        self.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(*ev);
    }

    fn worker_disabled(&self, w: WorkerId, view: &SchedView<'_>) {
        // Routing first: mark the worker dead and recompute which shards
        // are orphaned (every owner dead), so pushes racing with the
        // quarantine stop targeting them as early as possible.
        {
            let n = self.shards.len();
            let workers = view.platform().worker_count();
            let mut dead = self.dead_workers.lock().unwrap_or_else(|p| p.into_inner());
            if dead.len() < workers {
                dead.resize(workers, false);
            }
            if w.index() < dead.len() {
                dead[w.index()] = true;
            }
            for i in 0..n {
                let all_dead = (0..workers)
                    .filter(|wi| wi % n == i)
                    .all(|wi| dead.get(wi).copied().unwrap_or(false));
                // A shard with no owner at all (shards > workers) only
                // ever receives round-robin pushes; it keeps them, since
                // it was never anyone's home and drains evenly.
                let has_owner = (0..workers).any(|wi| wi % n == i);
                self.orphaned[i].store(has_owner && all_dead, Ordering::Relaxed);
            }
        }
        // Every shard may hold tasks privately mapped to the dead worker
        // (a policy instance does not know which shard it lives in), so
        // the quarantine broadcasts. Policies re-push drained tasks into
        // themselves, which conserves each shard's pending count.
        for shard in &self.shards {
            let mut state = shard.state.lock().unwrap_or_else(|p| p.into_inner());
            self.catch_up(&mut state, view);
            state.policy.worker_disabled(w, view);
        }
    }

    fn push_retry(&self, t: TaskId, attempt: u32, view: &SchedView<'_>) {
        // A retried task has no releasing worker (its executor failed),
        // so it spreads round-robin like an initial push — skipping
        // orphaned shards: the retry often *is* the dead worker's task,
        // and parking it on the dead worker's shard starves it.
        let i = self.live_shard(self.rr.fetch_add(1, Ordering::Relaxed) % self.shards.len());
        let shard = &self.shards[i];
        let mut state = shard.state.lock().unwrap_or_else(|p| p.into_inner());
        self.catch_up(&mut state, view);
        state.policy.push_retry(t, attempt, view);
        shard.pending.fetch_add(1, Ordering::AcqRel);
        self.pending_total.fetch_add(1, Ordering::AcqRel);
    }

    fn pending(&self) -> usize {
        self.pending_total.load(Ordering::Acquire)
    }

    fn drain_prefetches(&self) -> Vec<PrefetchReq> {
        if !self.emits_prefetches {
            return Vec::new();
        }
        let mut all = Vec::new();
        for shard in &self.shards {
            let mut state = shard.state.lock().unwrap_or_else(|p| p.into_inner());
            all.extend(state.policy.drain_prefetches());
        }
        all
    }

    fn counters(&self) -> mp_trace::CounterSnapshot {
        let mut snap = mp_trace::CounterSnapshot::default();
        if !mp_trace::obs::obs_enabled() {
            return snap;
        }
        // Scalars fold across policies; the per-queue *vectors* are the
        // front-end's own accounting, indexed by shard. A policy's
        // internal per-queue vectors (e.g. a nested relaxed multi-queue)
        // live in a different index space — summing them positionally
        // into the shard vectors, as the old interleaved merge-then-push
        // loop did, misaligns both and double-counts pops against the
        // `sum(shard_pops) == pops` invariant. The nesting boundary
        // keeps the scalars and drops the inner vectors.
        for shard in &self.shards {
            let state = shard.state.lock().unwrap_or_else(|p| p.into_inner());
            let mut inner = state.policy.counters();
            inner.shard_pops.clear();
            inner.steals.clear();
            snap.merge(&inner);
        }
        for shard in &self.shards {
            snap.shard_pops.push(shard.pops.load(Ordering::Relaxed));
            snap.steals.push(shard.steals.load(Ordering::Relaxed));
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::FifoScheduler;
    use crate::testutil::Fixture;

    #[test]
    fn global_lock_preserves_policy_behaviour() {
        let mut fx = Fixture::two_arch();
        let tasks: Vec<_> = (0..4)
            .map(|i| fx.add_task(fx.both, 8, &format!("t{i}")))
            .collect();
        let view = fx.view();
        let (c0, ..) = fx.workers();
        let fe = GlobalLock::new(Box::new(FifoScheduler::new()));
        assert_eq!(fe.name(), "fifo");
        for &t in &tasks {
            fe.push(t, None, &view);
        }
        assert_eq!(fe.pending(), 4);
        // FIFO through one lock: submission order preserved.
        for &t in &tasks {
            assert_eq!(fe.pop(c0, &view), Some(t));
        }
        assert_eq!(fe.pending(), 0);
        assert_eq!(fe.pop(c0, &view), None);
    }

    #[test]
    fn sharded_executes_every_task_exactly_once() {
        let mut fx = Fixture::two_arch();
        let tasks: Vec<_> = (0..40)
            .map(|i| fx.add_task(fx.both, 8, &format!("t{i}")))
            .collect();
        let view = fx.view();
        let (c0, c1, g0) = fx.workers();
        let fe = ShardedAdapter::new(3, &|| Box::new(FifoScheduler::new()));
        assert_eq!(fe.shard_count(), 3);
        for (i, &t) in tasks.iter().enumerate() {
            // Mix initial and released pushes across shards.
            let releaser = match i % 3 {
                0 => None,
                1 => Some(c1),
                _ => Some(g0),
            };
            fe.push(t, releaser, &view);
        }
        assert_eq!(fe.pending(), 40);
        let mut seen = std::collections::HashSet::new();
        // One worker drains everything through own-shard + steal paths.
        while let Some(t) = fe.pop(c0, &view) {
            assert!(seen.insert(t), "duplicate pop of {t:?}");
        }
        assert_eq!(seen.len(), 40);
        assert_eq!(fe.pending(), 0);
    }

    /// Pops delegate to FIFO, except the first pop of an armed instance
    /// panics *before* touching any state — the consistent push/pop
    /// boundary a contained kernel panic leaves behind.
    struct PanicOnce {
        inner: FifoScheduler,
        armed: bool,
    }

    impl Scheduler for PanicOnce {
        fn name(&self) -> &'static str {
            "panic-once"
        }
        fn push(&mut self, t: TaskId, r: Option<WorkerId>, v: &SchedView<'_>) {
            self.inner.push(t, r, v);
        }
        fn pop(&mut self, w: WorkerId, v: &SchedView<'_>) -> Option<TaskId> {
            if self.armed {
                self.armed = false;
                panic!("deliberate poison");
            }
            self.inner.pop(w, v)
        }
        fn pending(&self) -> usize {
            self.inner.pending()
        }
    }

    /// Regression: a panic unwinding out of the wrapped policy used to
    /// poison the global mutex and turn every later call into an
    /// `expect("scheduler poisoned")` abort. The guard is recovered
    /// now, so one contained panic costs one pop, not the front end.
    #[test]
    fn poisoned_global_lock_recovers_instead_of_cascading() {
        let mut fx = Fixture::two_arch();
        let a = fx.add_task(fx.both, 8, "a");
        let b = fx.add_task(fx.both, 8, "b");
        let view = fx.view();
        let (c0, ..) = fx.workers();
        let fe = GlobalLock::new(Box::new(PanicOnce {
            inner: FifoScheduler::new(),
            armed: true,
        }));
        fe.push(a, None, &view);
        fe.push(b, None, &view);
        let poisoner = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fe.pop(c0, &view)));
        assert!(poisoner.is_err(), "armed pop must panic under the lock");
        assert_eq!(fe.pending(), 2);
        assert_eq!(fe.pop(c0, &view), Some(a));
        assert_eq!(fe.pop(c0, &view), Some(b));
        assert_eq!(fe.pending(), 0);
    }

    /// Same regression for the sharded front-end: shard and event-log
    /// mutexes recover from poison instead of cascade-aborting every
    /// subsequent pop of the surviving workers.
    #[test]
    fn poisoned_shard_recovers_instead_of_cascading() {
        use std::sync::atomic::AtomicUsize;

        let mut fx = Fixture::two_arch();
        let tasks: Vec<_> = (0..4)
            .map(|i| fx.add_task(fx.both, 8, &format!("t{i}")))
            .collect();
        let view = fx.view();
        let (c0, ..) = fx.workers();
        // Only the first-built instance (shard 0) is armed.
        let built = AtomicUsize::new(0);
        let factory = move || -> Box<dyn Scheduler> {
            Box::new(PanicOnce {
                inner: FifoScheduler::new(),
                armed: built.fetch_add(1, Ordering::Relaxed) == 0,
            })
        };
        let fe = ShardedAdapter::new(2, &factory);
        // Route every task to c0's home shard (shard 0), the armed one.
        for &t in &tasks {
            fe.push(t, Some(c0), &view);
        }
        assert_eq!(fe.shard_pending(0), 4);
        let poisoner = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fe.pop(c0, &view)));
        assert!(poisoner.is_err(), "armed pop must panic under the lock");
        // Shard 0's mutex is poisoned; pushes and pops keep working and
        // every task still executes exactly once.
        assert_eq!(fe.pending(), 4);
        let extra = fx.add_task(fx.both, 8, "extra");
        let view = fx.view();
        fe.push(extra, Some(c0), &view);
        let mut seen = std::collections::HashSet::new();
        while let Some(t) = fe.pop(c0, &view) {
            assert!(seen.insert(t), "duplicate pop of {t:?}");
        }
        assert_eq!(seen.len(), 5);
        assert_eq!(fe.pending(), 0);
    }

    #[test]
    fn sharded_feedback_replays_in_order_to_every_shard() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        /// Records the event order it observes.
        struct Probe {
            seen: Arc<std::sync::Mutex<Vec<f64>>>,
            pushed: usize,
        }
        impl Scheduler for Probe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn push(&mut self, _t: TaskId, _r: Option<WorkerId>, _v: &SchedView<'_>) {
                self.pushed += 1;
            }
            fn pop(&mut self, _w: WorkerId, _v: &SchedView<'_>) -> Option<TaskId> {
                None
            }
            fn pending(&self) -> usize {
                self.pushed
            }
            fn feedback(&mut self, ev: &SchedEvent, _v: &SchedView<'_>) {
                if let SchedEvent::TaskFinished { elapsed_us, .. } = ev {
                    self.seen.lock().unwrap().push(*elapsed_us);
                }
            }
            fn consumes_feedback(&self) -> bool {
                true
            }
        }

        let mut fx = Fixture::two_arch();
        let t = fx.add_task(fx.both, 8, "t");
        let view = fx.view();
        let (c0, c1, _) = fx.workers();
        let logs: Arc<std::sync::Mutex<Vec<f64>>> = Default::default();
        let counter = AtomicUsize::new(0);
        let fe = {
            let logs = logs.clone();
            let factory = move || -> Box<dyn Scheduler> {
                counter.fetch_add(1, Ordering::Relaxed);
                Box::new(Probe {
                    seen: logs.clone(),
                    pushed: 0,
                })
            };
            ShardedAdapter::new(2, &factory)
        };
        // Three ordered events, then touch both shards to force replay.
        for i in 0..3 {
            fe.feedback(
                &SchedEvent::TaskFinished {
                    t,
                    w: c0,
                    elapsed_us: i as f64,
                },
                &view,
            );
        }
        fe.push(t, Some(c0), &view);
        fe.push(t, Some(c1), &view);
        let seen = logs.lock().unwrap().clone();
        // Both shards saw all three events, each in global order.
        assert_eq!(seen.len(), 6);
        assert_eq!(&seen[0..3], &[0.0, 1.0, 2.0]);
        assert_eq!(&seen[3..6], &[0.0, 1.0, 2.0]);
    }
}
