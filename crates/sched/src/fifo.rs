//! Central-queue FIFO scheduler (the `eager` StarPU policy).

use std::collections::VecDeque;

use mp_dag::ids::TaskId;
use mp_platform::types::WorkerId;

use crate::api::{SchedView, Scheduler};

/// Tasks are handed out in ready order to whichever worker asks first and
/// can execute them. No model, no locality — the floor every smarter
/// policy must beat.
#[derive(Default, Debug)]
pub struct FifoScheduler {
    queue: VecDeque<TaskId>,
}

impl FifoScheduler {
    /// New empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn push(&mut self, t: TaskId, _releaser: Option<WorkerId>, _view: &SchedView<'_>) {
        self.queue.push_back(t);
    }

    fn pop(&mut self, w: WorkerId, view: &SchedView<'_>) -> Option<TaskId> {
        // First executable task in ready order; skip (but keep) the rest.
        let pos = self
            .queue
            .iter()
            .position(|&t| view.worker_can_exec(t, w))?;
        self.queue.remove(pos)
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Fixture;

    #[test]
    fn fifo_order_per_worker_capability() {
        let mut fx = Fixture::two_arch();
        let t_gpu = fx.add_task(fx.gpu_only, 64, "g");
        let t_cpu = fx.add_task(fx.cpu_only, 64, "c");
        let view = fx.view();
        let (c0, _, g0) = fx.workers();
        let mut s = FifoScheduler::new();
        s.push(t_gpu, None, &view);
        s.push(t_cpu, None, &view);
        // CPU worker skips the GPU-only head and gets the CPU task.
        assert_eq!(s.pop(c0, &view), Some(t_cpu));
        assert_eq!(s.pending(), 1);
        assert_eq!(s.pop(g0, &view), Some(t_gpu));
        assert_eq!(s.pop(g0, &view), None);
        assert_eq!(s.pending(), 0);
    }
}
