//! Shared test fixtures: a tiny two-arch platform, a kernel table, and
//! trivial [`DataLocator`] / [`LoadInfo`] implementations.
//!
//! Public (not `cfg(test)`) because the `multiprio` and `mp-sim` crates
//! reuse these fixtures in their own tests.

use std::collections::{HashMap, HashSet};

use mp_dag::access::AccessMode;
use mp_dag::graph::TaskGraph;
use mp_dag::ids::{DataId, TaskId, TaskTypeId};
use mp_perfmodel::{Estimator, TableModel, TimeFn};
use mp_platform::presets::simple;
use mp_platform::types::{ArchClass, MemNodeId, Platform, WorkerId};

use crate::api::{DataLocator, LoadInfo, SchedView};

/// Replica map with explicit placement; data without an entry lives on
/// main RAM (node 0) only, like freshly-registered StarPU handles.
#[derive(Default, Clone, Debug)]
pub struct MapLocator {
    map: HashMap<DataId, HashSet<MemNodeId>>,
}

impl MapLocator {
    /// Mark a valid replica of `d` on `m`.
    pub fn place(&mut self, d: DataId, m: MemNodeId) {
        self.map.entry(d).or_default().insert(m);
    }

    /// Drop every replica of `d` except on `m` (a write happened there).
    pub fn write(&mut self, d: DataId, m: MemNodeId) {
        let set = self.map.entry(d).or_default();
        set.clear();
        set.insert(m);
    }
}

impl DataLocator for MapLocator {
    fn is_on(&self, d: DataId, m: MemNodeId) -> bool {
        match self.map.get(&d) {
            Some(set) => set.contains(&m),
            None => m == MemNodeId(0),
        }
    }

    fn holders(&self, d: DataId) -> Vec<MemNodeId> {
        match self.map.get(&d) {
            Some(set) => {
                let mut v: Vec<_> = set.iter().copied().collect();
                v.sort();
                v
            }
            None => vec![MemNodeId(0)],
        }
    }
}

/// Every worker is always free.
#[derive(Default, Clone, Copy, Debug)]
pub struct ZeroLoad;

impl LoadInfo for ZeroLoad {
    fn busy_until(&self, _w: WorkerId) -> f64 {
        0.0
    }
}

/// Per-worker busy-until table for finer-grained tests.
#[derive(Default, Clone, Debug)]
pub struct TableLoad(pub HashMap<WorkerId, f64>);

impl LoadInfo for TableLoad {
    fn busy_until(&self, w: WorkerId) -> f64 {
        self.0.get(&w).copied().unwrap_or(0.0)
    }
}

/// A ready-made scheduler test bench: 2 CPU workers + 1 GPU, three
/// kernels (`BOTH`: CPU 100 µs / GPU 10 µs; `CPUONLY`: 50 µs;
/// `GPUONLY`: 5 µs).
pub struct Fixture {
    /// The graph under construction.
    pub graph: TaskGraph,
    /// `simple(2, 1)`: nodes {ram, gpu0-mem}, workers {c0, c1, g0}.
    pub platform: Platform,
    /// Kernel table (see type docs).
    pub model: TableModel,
    /// Replica placement.
    pub locator: MapLocator,
    /// Engine load stub.
    pub load: TableLoad,
    /// Kernel with both implementations.
    pub both: TaskTypeId,
    /// CPU-only kernel.
    pub cpu_only: TaskTypeId,
    /// GPU-only kernel.
    pub gpu_only: TaskTypeId,
    /// Current virtual time handed to views.
    pub now: f64,
}

impl Fixture {
    /// Build the standard fixture.
    pub fn two_arch() -> Self {
        let mut graph = TaskGraph::new();
        let both = graph.register_type("BOTH", true, true);
        let cpu_only = graph.register_type("CPUONLY", true, false);
        let gpu_only = graph.register_type("GPUONLY", false, true);
        let model = TableModel::builder()
            .set("BOTH", ArchClass::Cpu, TimeFn::Const(100.0))
            .set("BOTH", ArchClass::Gpu, TimeFn::Const(10.0))
            .set("CPUONLY", ArchClass::Cpu, TimeFn::Const(50.0))
            .set("GPUONLY", ArchClass::Gpu, TimeFn::Const(5.0))
            .build();
        Self {
            graph,
            platform: simple(2, 1),
            model,
            locator: MapLocator::default(),
            load: TableLoad::default(),
            both,
            cpu_only,
            gpu_only,
            now: 0.0,
        }
    }

    /// Add a task of `ttype` touching one fresh RW handle of `size` bytes.
    pub fn add_task(&mut self, ttype: TaskTypeId, size: u64, label: &str) -> TaskId {
        let d = self.graph.add_data(size, format!("{label}-data"));
        self.graph
            .add_task(ttype, vec![(d, AccessMode::ReadWrite)], 1.0, label)
    }

    /// A view over the current fixture state.
    pub fn view(&self) -> SchedView<'_> {
        SchedView {
            est: Estimator::new(&self.graph, &self.platform, &self.model),
            loc: &self.locator,
            load: &self.load,
            now: self.now,
        }
    }

    /// Ids of the two CPU workers and the GPU worker.
    pub fn workers(&self) -> (WorkerId, WorkerId, WorkerId) {
        (WorkerId(0), WorkerId(1), WorkerId(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_sanity() {
        let mut fx = Fixture::two_arch();
        let t = fx.add_task(fx.both, 1024, "t");
        let view = fx.view();
        let (c0, _, g0) = fx.workers();
        assert!(view.worker_can_exec(t, c0));
        assert!(view.worker_can_exec(t, g0));
        assert_eq!(view.delta_on_worker(t, c0), Some(100.0));
        assert_eq!(view.delta_on_worker(t, g0), Some(10.0));
    }

    #[test]
    fn locator_defaults_to_ram() {
        let fx = Fixture::two_arch();
        assert!(fx.locator.is_on(DataId(0), MemNodeId(0)));
        assert!(!fx.locator.is_on(DataId(0), MemNodeId(1)));
        assert_eq!(fx.locator.holders(DataId(0)), vec![MemNodeId(0)]);
    }

    #[test]
    fn locator_write_invalidates() {
        let mut loc = MapLocator::default();
        loc.place(DataId(0), MemNodeId(0));
        loc.place(DataId(0), MemNodeId(1));
        loc.write(DataId(0), MemNodeId(1));
        assert!(!loc.is_on(DataId(0), MemNodeId(0)));
        assert!(loc.is_on(DataId(0), MemNodeId(1)));
    }
}
