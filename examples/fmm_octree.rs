//! Task-based FMM (the paper's Fig. 6 workload): build a group-tree FMM
//! over uniform and clustered particle distributions and compare the
//! three paper schedulers while sweeping the GPU stream count.
//!
//! ```sh
//! cargo run --release --example fmm_octree [-- <particles> <tree_height>]
//! ```

use multiprio_suite::apps::fmm::{fmm, Distribution, FmmConfig};
use multiprio_suite::apps::fmm_model;
use multiprio_suite::bench::run_noisy;
use multiprio_suite::platform::presets::intel_v100_streams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let particles: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(200_000);
    let tree_height: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);

    let model = fmm_model();
    for dist in [Distribution::Uniform, Distribution::Clustered] {
        let w = fmm(FmmConfig {
            particles,
            tree_height,
            group_size: 64,
            distribution: dist,
            seed: 42,
        });
        println!(
            "\nFMM {dist:?}: {} particles, height {tree_height}, {} leaf cells, {} groups, {} tasks, {:.1} Gflop",
            particles,
            w.stats.leaf_cells,
            w.stats.groups,
            w.graph.task_count(),
            w.total_flops / 1e9
        );
        println!(
            "{:>8} {:>12} {:>12} {:>12}",
            "streams", "multiprio", "dmdas", "heteroprio"
        );
        for streams in [1usize, 2, 4] {
            let platform = intel_v100_streams(streams);
            let time =
                |sched: &str| run_noisy(&w.graph, &platform, &model, sched, 6, 0.2).makespan / 1e6;
            println!(
                "{:>8} {:>11.3}s {:>11.3}s {:>11.3}s",
                streams,
                time("multiprio"),
                time("dmdas"),
                time("heteroprio")
            );
        }
    }
}
