//! Quickstart: build a task graph with STF semantics, simulate it on a
//! heterogeneous node under MultiPrio, and inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use multiprio_suite::dag::{AccessMode, StfBuilder};
use multiprio_suite::multiprio::MultiPrioScheduler;
use multiprio_suite::perfmodel::{TableModel, TimeFn};
use multiprio_suite::platform::presets::simple;
use multiprio_suite::platform::types::ArchClass;
use multiprio_suite::sim::{simulate, SimConfig};
use multiprio_suite::trace::gantt::gantt_ascii;

fn main() {
    // 1. Describe the work: a small pipeline over two vectors. Tasks are
    //    submitted sequentially; the DAG is inferred from access modes.
    let mut stf = StfBuilder::new();
    let init = stf.graph_mut().register_type("INIT", true, false);
    let stencil = stf.graph_mut().register_type("STENCIL", true, true);
    let reduce = stf.graph_mut().register_type("REDUCE", true, false);

    let field = stf.graph_mut().add_data(8 << 20, "field");
    let halo = stf.graph_mut().add_data(64 << 10, "halo");
    let result = stf.graph_mut().add_data(8, "result");

    stf.submit(init, vec![(field, AccessMode::Write)], 1e6, "init");
    for step in 0..8 {
        stf.submit(
            stencil,
            vec![
                (field, AccessMode::ReadWrite),
                (halo, AccessMode::ReadWrite),
            ],
            5e8,
            format!("stencil[{step}]"),
        );
    }
    stf.submit(
        reduce,
        vec![(field, AccessMode::Read), (result, AccessMode::Write)],
        1e6,
        "reduce",
    );
    let graph = stf.finish();
    println!("graph: {:?}", graph.stats());

    // 2. Describe the machine and the kernel speeds.
    let platform = simple(4, 1); // 4 CPU workers + 1 GPU
    let model = TableModel::builder()
        .set(
            "INIT",
            ArchClass::Cpu,
            TimeFn::Rate {
                gflops: 10.0,
                overhead_us: 2.0,
            },
        )
        .rates("STENCIL", 20.0, 800.0, 8.0) // cpu GF/s, gpu GF/s, overhead
        .set(
            "REDUCE",
            ArchClass::Cpu,
            TimeFn::Rate {
                gflops: 10.0,
                overhead_us: 2.0,
            },
        )
        .build();

    // 3. Simulate under the paper's scheduler.
    let mut sched = MultiPrioScheduler::with_defaults();
    let result = simulate(&graph, &platform, &model, &mut sched, SimConfig::default());

    println!("scheduler: {}", result.scheduler);
    println!("makespan : {:.1} us", result.makespan);
    println!("tasks    : {}", result.stats.tasks);
    let gantt = gantt_ascii(&result.trace, &platform, 72, &[]).expect("trace is non-empty");
    println!("\n{gantt}");
}
