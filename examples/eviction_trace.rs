//! Reproduce the paper's Fig. 4 study: simulate the tiled Cholesky
//! factorization of a 960×20-tile matrix on 1 GPU + 6 CPUs with and
//! without MultiPrio's eviction mechanism, print the idle percentages and
//! ASCII Gantt charts (the practical critical path is marked `X`), and
//! write SVG Gantt charts next to the binary.
//!
//! ```sh
//! cargo run --release --example eviction_trace
//! ```

use multiprio_suite::apps::dense::{potrf, DenseConfig};
use multiprio_suite::apps::dense_model;
use multiprio_suite::bench::run_once;
use multiprio_suite::platform::presets::fig4;
use multiprio_suite::trace::analysis::idle_per_arch;
use multiprio_suite::trace::gantt::{gantt_ascii, gantt_svg};
use multiprio_suite::trace::practical_critical_path;

fn main() {
    let w = potrf(DenseConfig::new(20 * 960, 960));
    let platform = fig4();
    let model = dense_model();
    println!(
        "potrf 960x20 on {} ({} tasks)\n",
        platform.name,
        w.graph.task_count()
    );

    for (label, sched) in [
        ("WITHOUT eviction mechanism", "multiprio-noevict"),
        ("WITH eviction mechanism", "multiprio"),
    ] {
        let r = run_once(&w.graph, &platform, &model, sched, 4);
        let cp = practical_critical_path(&r.trace, &w.graph);
        println!("== MultiPrio {label} ==");
        println!("makespan: {:.1} us", r.makespan);
        for stat in idle_per_arch(&r.trace, &platform) {
            println!("  {:10} idle {:5.1}%", stat.label, stat.idle_pct);
        }
        let gantt = gantt_ascii(&r.trace, &platform, 100, &cp).expect("trace is non-empty");
        println!("{gantt}");
        let path = format!("fig4_{}.svg", sched.replace('-', "_"));
        let svg = gantt_svg(&r.trace, &platform, &cp).expect("trace is non-empty");
        std::fs::write(&path, svg).expect("write SVG next to the working directory");
        println!("(SVG written to {path})\n");
    }
    println!("Paper reference: eviction reduces GPU idle time from 29% to 1%.");
}
