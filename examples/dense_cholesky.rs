//! Dense tiled Cholesky (the paper's Fig. 5 `potrf` workload): compare
//! every scheduler on the Intel-V100 platform and report GFlop/s and
//! per-architecture idle time.
//!
//! ```sh
//! cargo run --release --example dense_cholesky [-- <matrix_size> <tile>]
//! ```

use multiprio_suite::apps::dense::{potrf, DenseConfig};
use multiprio_suite::apps::dense_model;
use multiprio_suite::bench::{make_scheduler, SCHEDULER_NAMES};
use multiprio_suite::platform::presets::intel_v100_streams;
use multiprio_suite::sim::{simulate, SimConfig};
use multiprio_suite::trace::analysis::idle_per_arch;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20 * 960);
    let tile: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(960);

    let w = potrf(DenseConfig::new(n, tile));
    let platform = intel_v100_streams(2);
    let model = dense_model();
    println!(
        "potrf n={n} tile={tile}: {} tasks, {} edges, {:.1} Gflop on {}\n",
        w.graph.task_count(),
        w.graph.edge_count(),
        w.total_flops / 1e9,
        platform.name,
    );
    println!(
        "{:22} {:>12} {:>10} {:>10} {:>10}",
        "scheduler", "makespan(ms)", "GFlop/s", "cpu idle%", "gpu idle%"
    );
    for name in SCHEDULER_NAMES {
        let mut s = make_scheduler(name);
        let r = simulate(
            &w.graph,
            &platform,
            &model,
            s.as_mut(),
            SimConfig::default(),
        );
        let idle = idle_per_arch(&r.trace, &platform);
        println!(
            "{:22} {:12.2} {:10.1} {:9.1}% {:9.1}%",
            name,
            r.makespan / 1e3,
            r.gflops(w.total_flops),
            idle[0].idle_pct,
            idle.get(1).map_or(0.0, |i| i.idle_pct),
        );
    }
}
