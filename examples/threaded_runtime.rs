//! Real execution (not simulation): run a tiled Cholesky factorization on
//! worker threads under MultiPrio via `mp-runtime`, then verify the
//! numerics against a reference solve.
//!
//! "GPU" workers are emulated by threads running an optimized kernel
//! variant while CPU workers run a naive one (see mp-runtime's crate docs
//! for the substitution rationale) — measured execution times feed a
//! history model, so the scheduler sees real calibrated heterogeneity.
//!
//! ```sh
//! cargo run --release --example threaded_runtime [-- <tiles> <tile_size>]
//! ```

use std::sync::Arc;

use multiprio_suite::dag::{AccessMode, DataId};
use multiprio_suite::multiprio::MultiPrioScheduler;
use multiprio_suite::perfmodel::{HistoryModel, TableModel, TimeFn};
use multiprio_suite::platform::presets::simple;
use multiprio_suite::platform::types::ArchClass;
use multiprio_suite::runtime::{Runtime, TaskBuilder, TaskCtx};

/// Naive O(n³) GEMM update: C -= A·Bᵀ (lower-tri Cholesky update shape).
fn gemm_naive(a: &[f64], b: &[f64], c: &mut [f64], n: usize) {
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += a[i * n + k] * b[j * n + k];
            }
            c[i * n + j] -= s;
        }
    }
}

/// Blocked GEMM (the "accelerated" variant for the emulated GPU class).
fn gemm_blocked(a: &[f64], b: &[f64], c: &mut [f64], n: usize) {
    const BS: usize = 32;
    for ii in (0..n).step_by(BS) {
        for jj in (0..n).step_by(BS) {
            for kk in (0..n).step_by(BS) {
                for i in ii..(ii + BS).min(n) {
                    for j in jj..(jj + BS).min(n) {
                        let mut s = 0.0;
                        for k in kk..(kk + BS).min(n) {
                            s += a[i * n + k] * b[j * n + k];
                        }
                        c[i * n + j] -= s;
                    }
                }
            }
        }
    }
}

/// Cholesky of one tile in place (lower-triangular).
fn potrf_tile(a: &mut [f64], n: usize) {
    for k in 0..n {
        let d = a[k * n + k].sqrt();
        assert!(d.is_finite() && d > 0.0, "matrix not SPD");
        a[k * n + k] = d;
        for i in k + 1..n {
            a[i * n + k] /= d;
        }
        for j in k + 1..n {
            for i in j..n {
                a[i * n + j] -= a[i * n + k] * a[j * n + k];
            }
        }
        for j in k + 1..n {
            a[k * n + j] = 0.0;
        }
    }
}

/// Triangular solve: B <- B · L⁻ᵀ for the panel below the diagonal.
fn trsm_tile(l: &[f64], b: &mut [f64], n: usize) {
    for i in 0..n {
        for k in 0..n {
            let mut s = b[i * n + k];
            for j in 0..k {
                s -= b[i * n + j] * l[k * n + j];
            }
            b[i * n + k] = s / l[k * n + k];
        }
    }
}

/// SYRK on a diagonal tile: C -= A·Aᵀ (lower part suffices; full is fine).
fn syrk_tile(a: &[f64], c: &mut [f64], n: usize) {
    gemm_naive(a, a, c, n);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nt: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(6);
    let ts: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let n = nt * ts;

    // SPD test matrix: A = M·Mᵀ + n·I, stored as tiles (lower triangle).
    let full: Vec<f64> = {
        let mut m = vec![0.0; n * n];
        let mut state = 0x12345678u64;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for v in m.iter_mut() {
            *v = rnd() * 0.1;
        }
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { n as f64 } else { 0.0 };
                for k in 0..n {
                    s += m[i * n + k] * m[j * n + k];
                }
                a[i * n + j] = s;
            }
        }
        a
    };

    // The platform: 3 CPU workers + 1 emulated "GPU" worker.
    let platform = simple(3, 1);
    let model = Arc::new(HistoryModel::new(
        TableModel::builder()
            .rates("POTRF", 1.0, 1.0, 1.0)
            .rates("TRSM", 1.0, 2.0, 1.0)
            .rates("SYRK", 1.0, 3.0, 1.0)
            .rates("GEMM", 1.0, 3.0, 1.0)
            .set("NOOP", ArchClass::Cpu, TimeFn::Const(1.0))
            .build(),
        3,
    ));
    let mut rt = Runtime::new(platform, model);

    // Register tiles (lower triangle + diagonal).
    let mut tiles: Vec<Vec<Option<DataId>>> = vec![vec![None; nt]; nt];
    for i in 0..nt {
        for j in 0..=i {
            let mut t = vec![0.0; ts * ts];
            for a in 0..ts {
                for b in 0..ts {
                    t[a * ts + b] = full[(i * ts + a) * n + (j * ts + b)];
                }
            }
            tiles[i][j] = Some(rt.register(t, &format!("A({i},{j})")));
        }
    }
    let at = |i: usize, j: usize| tiles[i][j].expect("lower tile");

    // Submit the tile Cholesky; dependencies are inferred.
    for k in 0..nt {
        rt.submit(
            TaskBuilder::new("POTRF")
                .access(at(k, k), AccessMode::ReadWrite)
                .cpu(move |ctx: &mut TaskCtx<'_>| potrf_tile(ctx.w(0), ts))
                .gpu(move |ctx: &mut TaskCtx<'_>| potrf_tile(ctx.w(0), ts))
                .flops((ts * ts * ts) as f64 / 3.0)
                .label(format!("POTRF({k})")),
        );
        for i in k + 1..nt {
            rt.submit(
                TaskBuilder::new("TRSM")
                    .access(at(k, k), AccessMode::Read)
                    .access(at(i, k), AccessMode::ReadWrite)
                    .cpu(move |ctx| {
                        let (l, b) = ctx.rw_pair(0, 1);
                        trsm_tile(l, b, ts);
                    })
                    .gpu(move |ctx| {
                        let (l, b) = ctx.rw_pair(0, 1);
                        trsm_tile(l, b, ts);
                    })
                    .flops((ts * ts * ts) as f64)
                    .label(format!("TRSM({i},{k})")),
            );
        }
        for i in k + 1..nt {
            rt.submit(
                TaskBuilder::new("SYRK")
                    .access(at(i, k), AccessMode::Read)
                    .access(at(i, i), AccessMode::ReadWrite)
                    .cpu(move |ctx| {
                        let (a, c) = ctx.rw_pair(0, 1);
                        syrk_tile(a, c, ts);
                    })
                    .gpu(move |ctx| {
                        let (a, c) = ctx.rw_pair(0, 1);
                        syrk_tile(a, c, ts);
                    })
                    .flops((ts * ts * ts) as f64)
                    .label(format!("SYRK({i},{k})")),
            );
            for j in k + 1..i {
                rt.submit(
                    TaskBuilder::new("GEMM")
                        .access(at(i, k), AccessMode::Read)
                        .access(at(j, k), AccessMode::Read)
                        .access(at(i, j), AccessMode::ReadWrite)
                        .cpu(move |ctx| {
                            // Naive variant on CPU workers.
                            let b: Vec<f64> = ctx.r(1).to_vec();
                            let (a, c) = ctx.rw_pair(0, 2);
                            gemm_naive(a, &b, c, ts);
                        })
                        .gpu(move |ctx| {
                            // Blocked variant on the emulated accelerator.
                            let b: Vec<f64> = ctx.r(1).to_vec();
                            let (a, c) = ctx.rw_pair(0, 2);
                            gemm_blocked(a, &b, c, ts);
                        })
                        .flops(2.0 * (ts * ts * ts) as f64)
                        .label(format!("GEMM({i},{j},{k})")),
                );
            }
        }
    }

    println!("running tile Cholesky: n={n} ({nt}x{nt} tiles of {ts})");
    let report = rt
        .run(Box::new(MultiPrioScheduler::with_defaults()))
        .expect("runtime run failed");
    println!(
        "scheduler {} executed {} tasks in {:.2} ms of wall time",
        report.scheduler,
        report.trace.tasks.len(),
        report.makespan_us / 1e3
    );
    report.trace.validate().expect("valid wall-clock trace");

    // Verify: L·Lᵀ must reproduce A (lower triangle).
    let mut max_err = 0.0f64;
    let mut l = vec![0.0; n * n];
    for i in 0..nt {
        for j in 0..=i {
            let t = rt.buffer(at(i, j));
            for a in 0..ts {
                for b in 0..ts {
                    l[(i * ts + a) * n + (j * ts + b)] = t[a * ts + b];
                }
            }
        }
    }
    for i in 0..n {
        for j in 0..=i {
            let mut s = 0.0;
            for k in 0..=j {
                s += l[i * n + k] * l[j * n + k];
            }
            max_err = max_err.max((s - full[i * n + j]).abs() / full[0].abs());
        }
    }
    println!("max relative error of L*L^T vs A: {max_err:.3e}");
    assert!(max_err < 1e-9, "factorization numerics are wrong");
    println!("numerics verified: the runtime + scheduler executed a correct factorization");
}
