//! Sparse multifrontal QR (the paper's Fig. 8 workload): factorize one of
//! the Fig. 7 matrices under each scheduler and report the ratio versus
//! Dmdas, plus the practical critical path through the elimination tree.
//!
//! ```sh
//! cargo run --release --example sparse_qr [-- <matrix-name>]
//! cargo run --release --example sparse_qr -- TF17
//! ```

use multiprio_suite::apps::sparseqr::{matrix, sparse_qr, SparseQrConfig, FIG7_MATRICES};
use multiprio_suite::apps::sparseqr_model;
use multiprio_suite::bench::run_noisy;
use multiprio_suite::platform::presets::intel_v100_streams;
use multiprio_suite::trace::practical_critical_path;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "flower_7_4".to_string());
    let Some(meta) = matrix(&name) else {
        eprintln!("unknown matrix '{name}'; available:");
        for m in &FIG7_MATRICES {
            eprintln!("  {} ({} Gflop)", m.name, m.gflops);
        }
        std::process::exit(1);
    };

    let w = sparse_qr(meta, SparseQrConfig::default());
    let platform = intel_v100_streams(4);
    let model = sparseqr_model();
    println!(
        "{}: {}x{}, {} nnz, {:.0} Gflop -> {} fronts, {} tasks",
        meta.name,
        meta.rows,
        meta.cols,
        meta.nnz,
        meta.gflops,
        w.fronts,
        w.graph.task_count()
    );

    let mut dmdas_time = f64::NAN;
    for sched in ["dmdas", "multiprio", "heteroprio", "lws"] {
        let r = run_noisy(&w.graph, &platform, &model, sched, 8, 0.25);
        let t = r.makespan / 1e6;
        if sched == "dmdas" {
            dmdas_time = t;
        }
        let cp = practical_critical_path(&r.trace, &w.graph);
        println!(
            "{:10} {:8.3} s  ratio vs dmdas {:5.3}  practical critical path: {} tasks",
            sched,
            t,
            dmdas_time / t,
            cp.len()
        );
    }
}
