//! # multiprio-suite — umbrella crate
//!
//! Re-exports every crate of the MultiPrio reproduction so examples and
//! integration tests can `use multiprio_suite::...` and pull in the whole
//! stack with one dependency.
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! paper-to-module mapping.

pub use mp_apps as apps;
pub use mp_audit as audit;
pub use mp_bench as bench;
pub use mp_cache as cache;
pub use mp_dag as dag;
pub use mp_perfmodel as perfmodel;
pub use mp_platform as platform;
pub use mp_runtime as runtime;
pub use mp_sched as sched;
pub use mp_serve as serve;
pub use mp_sim as sim;
pub use mp_trace as trace;
pub use multiprio;
